#include "telemetry/telemetry.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "core/build_info.hpp"
#include "trace/json.hpp"
#include "trace/registry.hpp"

namespace cooprt::telemetry {

double
monotonicSeconds()
{
    // cooprt-lint: allow(unseeded-randomness) telemetry is the
    // repository's single wall-clock authority; readings feed
    // host-side reporting only, never simulated state (DESIGN.md §16)
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now.time_since_epoch())
        .count();
}

/* ------------------------------------------------------------------ */
/* Build provenance                                                    */
/* ------------------------------------------------------------------ */

void
writeBuildFields(trace::JsonWriter &w)
{
    w.field("revision", std::string(build::kGitRevision));
    w.field("dirty", build::kGitDirty ? "true" : "false");
    w.field("compiler", std::string(build::kCompiler));
    w.field("build_type", std::string(build::kBuildType));
    w.field("check", build::kCheckEnabled ? "true" : "false");
}

std::string
buildInfoJson()
{
    std::ostringstream ss;
    trace::JsonWriter w(ss);
    w.open();
    writeBuildFields(w);
    w.close();
    return ss.str();
}

/* ------------------------------------------------------------------ */
/* Process memory                                                      */
/* ------------------------------------------------------------------ */

Rss
parseProcStatus(std::istream &is)
{
    Rss rss;
    std::string line;
    while (std::getline(is, line)) {
        std::uint64_t *slot = nullptr;
        if (line.rfind("VmRSS:", 0) == 0)
            slot = &rss.current_kb;
        else if (line.rfind("VmHWM:", 0) == 0)
            slot = &rss.peak_kb;
        if (slot == nullptr)
            continue;
        std::istringstream fields(line.substr(6));
        std::uint64_t kb = 0;
        std::string unit;
        if (fields >> kb >> unit && unit == "kB")
            *slot = kb;
    }
    return rss;
}

Rss
readRss()
{
    std::ifstream status("/proc/self/status");
    if (!status)
        return Rss{}; // non-Linux hosts: degrade to zeros
    return parseProcStatus(status);
}

/* ------------------------------------------------------------------ */
/* Per-run recorder                                                    */
/* ------------------------------------------------------------------ */

const char *
phaseName(Phase phase)
{
    switch (phase) {
      case Phase::SceneLoad: return "scene_load";
      case Phase::BvhBuild: return "bvh_build";
      case Phase::Warmup: return "warmup";
      case Phase::SimLoop: return "sim_loop";
      case Phase::Report: return "report";
    }
    return "unknown";
}

void
Recorder::reset()
{
    summary_ = Summary{};
    live_cycle_.store(0, std::memory_order_relaxed);
    live_rays_.store(0, std::memory_order_relaxed);
}

void
Recorder::recordPhase(Phase phase, double seconds)
{
    auto &span = summary_.phases[std::size_t(phase)];
    span.seconds += seconds;
    span.count++;
}

void
Recorder::finishRun(std::uint64_t cycles, std::uint64_t rays_retired)
{
    summary_.enabled = true;
    summary_.cycles = cycles;
    summary_.rays_retired = rays_retired;
    summary_.sim_seconds = summary_.phase(Phase::SimLoop).seconds;
    if (summary_.sim_seconds > 0.0) {
        summary_.cycles_per_sec =
            double(cycles) / summary_.sim_seconds;
        summary_.rays_per_sec =
            double(rays_retired) / summary_.sim_seconds;
    }
    summary_.rss = readRss();
    publishProgress(cycles, rays_retired);
}

void
Recorder::registerMetrics(trace::Registry &registry)
{
    // Deterministic gauges only (simulated cycle / retired-warp
    // progress): these may join per-run metrics sessions without
    // breaking the jobs-1-vs-N byte-identity contract. Host wall
    // clock and RSS are campaign-registry-only (registerProbes).
    registry.probe(
        "telemetry.sim_cycle", [this] { return double(liveCycle()); },
        this);
    registry.probe(
        "telemetry.rays_retired",
        [this] { return double(liveRays()); }, this);
}

void
Recorder::writeJson(std::ostream &os, const std::string &scene) const
{
    const Summary &s = summary_;
    trace::JsonWriter w(os);
    w.open();
    trace::writeSchemaVersion(w);
    if (run_key_.valid())
        trace::writeRunKey(w, run_key_);
    w.field("scene", scene);
    w.field("telemetry_version", 1);
    w.open("build");
    writeBuildFields(w);
    w.close();
    // Deterministic simulated totals, separated from "host" below so
    // identity tooling can compare them across worker counts.
    w.open("sim");
    w.field("cycles", s.cycles);
    w.field("rays_retired", s.rays_retired);
    w.close();
    w.open("host");
    w.open("phases");
    for (int p = 0; p < kNumPhases; ++p) {
        const PhaseSpan &span = s.phases[std::size_t(p)];
        w.open(phaseName(Phase(p)));
        w.field("seconds", span.seconds);
        w.field("count", span.count);
        w.close();
    }
    w.close();
    w.field("sim_seconds", s.sim_seconds);
    w.field("cycles_per_sec", s.cycles_per_sec);
    w.field("rays_per_sec", s.rays_per_sec);
    w.field("rss_current_kb", s.rss.current_kb);
    w.field("rss_peak_kb", s.rss.peak_kb);
    w.close();
    w.close();
    os << '\n';
}

/* ------------------------------------------------------------------ */
/* Event log                                                           */
/* ------------------------------------------------------------------ */

EventLog::EventLog(std::ostream *os) : os_(os)
{
    if (os_ != nullptr)
        t0_ = monotonicSeconds();
}

void
EventLog::emit(const char *event, const std::string &deterministic,
               const std::string &host)
{
    if (os_ == nullptr)
        return;
    std::ostringstream line;
    line << "{\"ev\":\"" << event << '"';
    if (!deterministic.empty())
        line << ',' << deterministic;
    line << ",\"host\":{\"t_s\":" << (monotonicSeconds() - t0_);
    if (!host.empty())
        line << ',' << host;
    line << "}}\n";
    std::lock_guard<std::mutex> lock(mutex_);
    *os_ << line.str();
    os_->flush();
}

void
EventLog::campaignBegin(std::size_t jobs, int workers)
{
    // Worker count is a host scheduling choice, so it lives in the
    // host object: two runs of the same matrix with different --jobs
    // must project to identical deterministic lines.
    emit("campaign_begin",
         "\"jobs\":" + std::to_string(jobs) +
             ",\"build\":" + buildInfoJson(),
         "\"workers\":" + std::to_string(workers));
}

void
EventLog::jobStart(std::size_t index, const std::string &tag,
                   int attempt)
{
    emit("job_start",
         "\"index\":" + std::to_string(index) +
             ",\"tag\":" + trace::quoteJson(tag) +
             ",\"attempt\":" + std::to_string(attempt));
}

void
EventLog::jobRetry(std::size_t index, const std::string &tag,
                   int next_attempt)
{
    emit("job_retry",
         "\"index\":" + std::to_string(index) +
             ",\"tag\":" + trace::quoteJson(tag) +
             ",\"next_attempt\":" + std::to_string(next_attempt));
}

void
EventLog::jobTimeout(std::size_t index, const std::string &tag,
                     double budget_s)
{
    emit("job_timeout",
         "\"index\":" + std::to_string(index) +
             ",\"tag\":" + trace::quoteJson(tag) +
             ",\"budget_s\":" + std::to_string(budget_s));
}

void
EventLog::jobFinish(std::size_t index, const std::string &tag,
                    bool ok, int attempts, std::uint64_t cycles,
                    double duration_s)
{
    std::ostringstream host;
    host << "\"duration_s\":" << duration_s
         << ",\"rss_peak_kb\":" << readRss().peak_kb;
    emit("job_finish",
         "\"index\":" + std::to_string(index) +
             ",\"tag\":" + trace::quoteJson(tag) + ",\"ok\":" +
             (ok ? "true" : "false") +
             ",\"attempts\":" + std::to_string(attempts) +
             ",\"cycles\":" + std::to_string(cycles),
         host.str());
}

void
EventLog::campaignEnd(const CampaignCounters &c, double wall_seconds)
{
    std::ostringstream host;
    host << "\"wall_seconds\":" << wall_seconds
         << ",\"steals\":" << c.steals
         << ",\"rss_peak_kb\":" << readRss().peak_kb;
    // Steals are scheduling-dependent (worker-count-sensitive), so
    // they report under host even though the counter is integral.
    emit("campaign_end",
         "\"done\":" + std::to_string(c.done) +
             ",\"failed\":" + std::to_string(c.failed) +
             ",\"retried\":" + std::to_string(c.retried) +
             ",\"timed_out\":" + std::to_string(c.timed_out),
         host.str());
}

/* ------------------------------------------------------------------ */
/* Campaign monitor                                                    */
/* ------------------------------------------------------------------ */

namespace {

/** EWMA smoothing for per-job durations: responsive within ~5 jobs
 *  while damping one outlier to 30% weight. */
constexpr double kEwmaAlpha = 0.3;

} // namespace

void
CampaignMonitor::begin(std::size_t total_jobs, int workers)
{
    std::lock_guard<std::mutex> lock(mutex_);
    total_jobs_ = total_jobs;
    workers_ = workers > 0 ? workers : 1;
    t0_ = monotonicSeconds();
    ewma_seconds_ = 0.0;
    finished_ = 0;
}

void
CampaignMonitor::jobFinished(double duration_seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    finished_++;
    ewma_seconds_ = finished_ == 1
                        ? duration_seconds
                        : kEwmaAlpha * duration_seconds +
                              (1.0 - kEwmaAlpha) * ewma_seconds_;
}

double
CampaignMonitor::ewmaJobSeconds() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return ewma_seconds_;
}

double
CampaignMonitor::jobsPerSecond(const CampaignCounters &c) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const double elapsed = monotonicSeconds() - t0_;
    return elapsed > 0.0 ? double(c.done) / elapsed : 0.0;
}

double
CampaignMonitor::etaSeconds(const CampaignCounters &c) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (finished_ == 0)
        return -1.0;
    const std::uint64_t ended = c.done + c.failed;
    const std::uint64_t remaining =
        total_jobs_ > ended ? total_jobs_ - ended : 0;
    return double(remaining) * ewma_seconds_ / double(workers_);
}

std::string
CampaignMonitor::statusLine(const CampaignCounters &c) const
{
    const double ewma = ewmaJobSeconds();
    const double eta = etaSeconds(c);
    const Rss rss = readRss();
    char buf[256];
    std::size_t total;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        total = total_jobs_;
    }
    std::snprintf(buf, sizeof buf,
                  "%llu/%zu done, %llu failed, %llu running, "
                  "%llu steals, ewma %.2f s, eta %s, rss %llu MB",
                  (unsigned long long)c.done, total,
                  (unsigned long long)c.failed,
                  (unsigned long long)c.running,
                  (unsigned long long)c.steals, ewma,
                  eta < 0.0
                      ? "?"
                      : (std::to_string(int(eta + 0.5)) + " s").c_str(),
                  (unsigned long long)(rss.current_kb / 1024));
    return buf;
}

void
CampaignMonitor::registerProbes(trace::Registry &registry,
                                const void *owner)
{
    auto counters = [this]() -> CampaignCounters {
        return counters_fn_ ? counters_fn_() : CampaignCounters{};
    };
    registry.probe(
        "telemetry.ewma_job_seconds",
        [this] { return ewmaJobSeconds(); }, owner);
    registry.probe(
        "telemetry.jobs_per_second",
        [this, counters] { return jobsPerSecond(counters()); },
        owner);
    registry.probe(
        "telemetry.eta_seconds",
        [this, counters] { return etaSeconds(counters()); }, owner);
    registry.probe(
        "telemetry.rss_current_kb",
        [] { return double(readRss().current_kb); }, owner);
    registry.probe(
        "telemetry.rss_peak_kb",
        [] { return double(readRss().peak_kb); }, owner);
}

void
CampaignMonitor::writePrometheusTo(std::ostream &os,
                                   const CampaignCounters &c) const
{
    auto metric = [&os](const char *name, const char *help,
                        const char *type, double value) {
        os << "# HELP " << name << ' ' << help << '\n'
           << "# TYPE " << name << ' ' << type << '\n'
           << name << ' ' << value << '\n';
    };
    metric("cooprt_jobs_queued", "Jobs submitted to the campaign.",
           "gauge", double(c.queued));
    metric("cooprt_jobs_running", "Jobs currently executing.",
           "gauge", double(c.running));
    metric("cooprt_jobs_done", "Jobs completed successfully.",
           "counter", double(c.done));
    metric("cooprt_jobs_failed", "Jobs that gave up.", "counter",
           double(c.failed));
    metric("cooprt_jobs_retried", "Re-queued job attempts.",
           "counter", double(c.retried));
    metric("cooprt_jobs_timed_out",
           "Failures that were wall-clock timeouts.", "counter",
           double(c.timed_out));
    metric("cooprt_steals_total",
           "Jobs taken from another worker's queue.", "counter",
           double(c.steals));
    metric("cooprt_job_seconds_ewma",
           "EWMA of per-job wall-clock seconds.", "gauge",
           ewmaJobSeconds());
    metric("cooprt_jobs_per_second",
           "Completed jobs per wall-clock second.", "gauge",
           jobsPerSecond(c));
    metric("cooprt_eta_seconds",
           "Estimated seconds to campaign completion.", "gauge",
           etaSeconds(c));
    const Rss rss = readRss();
    metric("cooprt_rss_current_kb", "Resident set size, kB.", "gauge",
           double(rss.current_kb));
    metric("cooprt_rss_peak_kb", "Peak resident set size, kB.",
           "gauge", double(rss.peak_kb));
    os << "# HELP cooprt_build_info Build provenance (value is "
          "always 1).\n"
       << "# TYPE cooprt_build_info gauge\n"
       << "cooprt_build_info{revision=\""
       << trace::escapeJson(build::kGitRevision) << "\",dirty=\""
       << (build::kGitDirty ? "1" : "0") << "\",build_type=\""
       << trace::escapeJson(build::kBuildType) << "\",check=\""
       << (build::kCheckEnabled ? "1" : "0") << "\"} 1\n";
}

void
CampaignMonitor::writePrometheus(const std::string &path,
                                 const CampaignCounters &c) const
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp);
        if (!os)
            return; // snapshotting is best-effort; never fail a run
        writePrometheusTo(os, c);
    }
    std::rename(tmp.c_str(), path.c_str());
}

/* ------------------------------------------------------------------ */
/* Heartbeat                                                           */
/* ------------------------------------------------------------------ */

Heartbeat::Heartbeat(double interval_seconds,
                     std::function<std::string()> status,
                     std::ostream &os)
    : thread_([this, interval_seconds, status = std::move(status),
               &os](std::stop_token st) {
          std::mutex m;
          std::condition_variable_any cv;
          const auto interval = std::chrono::duration_cast<
              std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(
                  interval_seconds > 0.0 ? interval_seconds : 1.0));
          std::unique_lock<std::mutex> lock(m);
          while (!st.stop_requested()) {
              // Stop-token-aware nap: wakes immediately on shutdown,
              // so short campaigns never block on a long interval.
              if (cv.wait_for(lock, st, interval,
                              [] { return false; }))
                  break;
              if (st.stop_requested())
                  break;
              os << "[telemetry] " << status() << '\n';
              os.flush();
              beats_.fetch_add(1, std::memory_order_relaxed);
          }
      })
{
}

Heartbeat::~Heartbeat()
{
    thread_.request_stop();
}

} // namespace cooprt::telemetry

/**
 * @file
 * The RT unit timing model (paper Figs. 3 and 7).
 *
 * One RT unit per SM. It holds a warp buffer whose entries each carry
 * one in-flight trace_ray instruction: per-thread ray properties,
 * traversal stack, status, `main_tid` and the per-thread `min_thit`
 * registers. Every cycle the RT unit:
 *
 *   1. selects a warp (round-robin) and issues ONE coalesced unique
 *      node address from the TOSes of its ready threads to the memory
 *      hierarchy (threads sharing that address pop together);
 *   2. (CoopRT only) lets the Load Balancing Unit move one TOS per
 *      subwarp from a busy ("main") thread's stack to an idle
 *      ("helper") thread's stack, the helper inheriting `main_tid`;
 *   3. pops at most one memory response from the response FIFO, runs
 *      the per-thread math units (box/triangle tests), pushes hit
 *      children and updates the main thread's `min_thit` on closer
 *      primitive hits;
 *   4. retires warps whose threads have all emptied their stacks.
 *
 * Timing comes from the `FetchFn` callback (the SM's port into the
 * L1/L2/DRAM hierarchy), which returns data-ready cycles.
 */

#ifndef COOPRT_RTUNIT_RT_UNIT_HPP
#define COOPRT_RTUNIT_RT_UNIT_HPP

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bvh/flat_bvh.hpp"
#include "check/check.hpp"
#include "bvh/traversal.hpp"
#include "geom/proxy.hpp"
#include "geom/ray.hpp"
#include "memscope/memscope.hpp"
#include "prof/prof.hpp"
#include "rtunit/trace_config.hpp"
#include "stats/timeline.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/registry.hpp"

namespace cooprt::raytrace {
class UnitRecorder;
} // namespace cooprt::raytrace

namespace cooprt::rtunit {

/** Sentinel for "no cycle" / "never". */
constexpr std::uint64_t kNever =
    std::numeric_limits<std::uint64_t>::max();

/** Base address of the per-SM hit-record buffer (store queue). */
constexpr std::uint64_t kHitBufferBase = 0x8000'0000ULL;

/** A trace_ray instruction: up to 32 rays, one per active thread. */
struct TraceJob
{
    std::array<std::optional<geom::Ray>, kWarpSize> rays;

    /**
     * Any-hit semantics: the traversal of a ray terminates at the
     * first intersection inside its interval instead of searching
     * for the closest one (paper Section 2.1: "Traversal continues
     * until the stack is empty, or any-hit is found"). Used by the
     * shadow and ambient-occlusion shaders.
     */
    bool any_hit = false;

    /**
     * Leaf-test dispatch for non-rendering query workloads
     * (`cooprt::query`): None runs the triangle intersector, the
     * query kinds interpret proxy primitives (see geom/proxy.hpp).
     * Traversal, caching and timing are identical either way.
     */
    geom::QueryKind query = geom::QueryKind::None;

    int
    activeCount() const
    {
        int n = 0;
        for (const auto &r : rays)
            n += r.has_value();
        return n;
    }
};

/** Result of a retired trace_ray: per-thread closest hits. */
struct TraceResult
{
    std::array<geom::HitRecord, kWarpSize> hits;
    std::uint64_t issue_cycle = 0;
    std::uint64_t retire_cycle = 0;

    std::uint64_t latency() const { return retire_cycle - issue_cycle; }
};

/** Aggregate counters for one RT unit. */
struct RtUnitStats
{
    std::uint64_t node_fetches = 0;   ///< internal node records read
    std::uint64_t leaf_fetches = 0;   ///< leaf records read
    std::uint64_t box_tests = 0;
    std::uint64_t tri_tests = 0;
    std::uint64_t steals = 0;         ///< LBU node moves
    std::uint64_t coalesced_threads = 0; ///< threads sharing a fetch
    std::uint64_t stale_pops = 0;     ///< pop-time min_thit discards
    std::uint64_t stack_overflows = 0;
    std::uint64_t retired_warps = 0;
    std::uint64_t retired_trace_latency = 0; ///< sum of warp latencies
    std::uint64_t max_trace_latency = 0;
    std::uint64_t issue_cycles = 0;   ///< cycles that issued a fetch
    std::uint64_t prefetches = 0;     ///< child records prefetched
    std::uint64_t predictor_hits = 0; ///< predicted prim confirmed
    std::uint64_t predictor_misses = 0;
    std::uint64_t hit_stores = 0;     ///< hit records written back
};

/**
 * Per-interval thread-status sample for the paper's Fig. 4: threads
 * inside resident warps are inactive (no ray), busy (non-empty stack
 * or node in flight), or waiting (finished early / not yet started).
 */
struct ThreadStatusCounts
{
    std::uint64_t inactive = 0;
    std::uint64_t busy = 0;
    std::uint64_t waiting = 0;

    std::uint64_t total() const { return inactive + busy + waiting; }
};

/**
 * The RT unit. Owns warp-buffer entries and drives the cooperative
 * traversal. All scheduling state is deterministic.
 */
class RtUnit
{
  public:
    /** Memory port: (address, bytes, now) -> data-ready cycle. */
    using FetchFn = std::function<std::uint64_t(
        std::uint64_t addr, std::uint32_t bytes, std::uint64_t now)>;
    /** Invoked when a warp's trace_ray retires. */
    using RetireFn = std::function<void(int slot, const TraceResult &)>;

    RtUnit(const bvh::FlatBvh &bvh, const scene::Mesh &mesh,
           const TraceConfig &config, FetchFn fetch);
    ~RtUnit();

    RtUnit(const RtUnit &) = delete;
    RtUnit &operator=(const RtUnit &) = delete;

    const TraceConfig &config() const { return cfg_; }
    const RtUnitStats &stats() const { return stats_; }

    /**
     * Register this unit's counters into @p registry under
     * `rtunit.sm<sm_id>.*` (probes reading the live RtUnitStats,
     * plus a warp-buffer occupancy gauge and a trace-latency
     * histogram) and attach @p tracer for structured events (LBU
     * steal instants on track pid = @p sm_id). Either may be null.
     * Registrations are dropped in the destructor; the registry must
     * outlive this unit.
     */
    void attachTrace(cooprt::trace::Registry *registry,
                     cooprt::trace::Tracer *tracer, int sm_id);

    /** Serving level of the most recent fetch (see MemorySystem). */
    using ProfLevelFn = std::function<cooprt::prof::MemLevel()>;

    /**
     * Attach the stall-attribution profiler: every warp-resident
     * cycle is classified into @p profile per the `cooprt::prof`
     * taxonomy (the sum over buckets equals the warp's trace latency
     * exactly). @p level attributes response-starved cycles to the
     * memory level that serves them; a null @p level attributes all
     * of them to L1. Null @p profile (the default) disables the
     * profiler entirely: no per-cycle work runs and simulated
     * behaviour is bit-identical.
     */
    void attachProf(cooprt::prof::RtUnitProfile *profile,
                    ProfLevelFn level);

    /**
     * Attach the ray-level provenance recorder (`cooprt::raytrace`):
     * lifecycle events of the recorder's sampled rays — launch,
     * pops/pushes, fetches with serving level from @p level, leaf
     * tests, LBU steals, retirement — are logged cycle-stamped.
     * Null @p recorder (the default) disables recording; hot paths
     * then pay one pointer test and simulated behaviour is
     * bit-identical (pinned-cycle proof in tests/raytrace).
     */
    void attachRayTrace(cooprt::raytrace::UnitRecorder *recorder,
                        ProfLevelFn level);

    /**
     * Attach the BVH-topology profiler (`cooprt::memscope`): every
     * coalesced node fetch is tagged into @p scope with the node's
     * stable id, tree depth, serving level from @p level, consumer
     * lane count and the warp's traversal phase. Null @p scope (the
     * default) disables tagging; hot paths then pay one pointer test
     * and simulated behaviour is bit-identical (pinned-cycle proof in
     * tests/memscope).
     */
    void attachMemscope(cooprt::memscope::UnitScope *scope,
                        ProfLevelFn level);

    /**
     * Component path used by `cooprt::check` violations (default
     * "rtunit"; the SM sets "rtunit.sm<id>"). No-op when the audit
     * layer is compiled out.
     */
    void
    setCheckLabel(const std::string &label)
    {
#if COOPRT_CHECK_ENABLED
        check_label_ = label;
#else
        (void)label;
#endif
    }

    /** Number of free warp-buffer entries. */
    int freeSlots() const;
    /** True when no warp is resident. */
    bool idle() const { return resident_ == 0; }

    /**
     * Insert a trace_ray instruction into a free warp-buffer slot.
     * @return The slot index used.
     * @throws std::runtime_error when the warp buffer is full.
     */
    int submit(const TraceJob &job, std::uint64_t now, RetireFn on_retire);

    /**
     * Advance the RT unit by one cycle at time @p now. Must be called
     * with non-decreasing @p now values.
     */
    void tick(std::uint64_t now);

    /**
     * The earliest cycle >= @p now at which calling tick() can make
     * progress, or kNever when the unit is empty. Used by the GPU's
     * idle-skipping main loop; skipping to this cycle cannot change
     * simulated behaviour.
     */
    std::uint64_t nextEventCycle(std::uint64_t now) const;

    /** Busy threads (non-empty stack or node in flight) right now. */
    ThreadStatusCounts threadStatus() const;

    /**
     * Attach a Fig.-11 style timeline recorder to warp-buffer slot
     * activity: after skipping @p skip_submissions trace_rays, the
     * next submitted warp is recorded until it retires. Skipping lets
     * callers capture a late (divergent) trace instead of the
     * coherent primary one, as the paper's Fig. 11 does.
     */
    void armTimeline(stats::TimelineRecorder *recorder,
                     int skip_submissions = 0);

    /**
     * Share another RT unit's intersection-predictor table (a
     * GPU-wide predictor, so spatial locality between warps on
     * different SMs is not fragmented). No-op when the predictor is
     * disabled.
     */
    void sharePredictor(const RtUnit &other);

  private:
    /**
     * One stack entry: a node reference, its AABB entry distance, and
     * the owning ray's thread id (the per-entry main tag that lets a
     * helper accept new work while an old fetch is still in flight).
     */
    struct StackEntry
    {
        bvh::NodeRef ref;
        float entry_t;
        std::int8_t main;
    };

    /** Per-thread traversal state within a warp entry. */
    struct ThreadState
    {
        geom::Ray ray;          ///< this thread's own ray
        bool active = false;    ///< thread had a ray at submit
        int main_tid = 0;       ///< current ray target (status/debug)
        std::deque<StackEntry> stack;
        bool pending = false;   ///< node fetch in flight
        bvh::NodeRef pending_ref;
        std::int8_t pending_main = 0;
    };

    /** One warp-buffer entry. */
    struct WarpEntry
    {
        bool valid = false;
        bool any_hit = false;
        geom::QueryKind query = geom::QueryKind::None;
        std::array<ThreadState, kWarpSize> th;
        std::array<float, kWarpSize> min_thit;
        std::array<geom::HitRecord, kWarpSize> hit;
        int outstanding = 0;    ///< in-flight responses
        std::uint64_t issue_cycle = 0;
        RetireFn on_retire;
        bool record_timeline = false;
        /** First cycle not yet stall-attributed (profiler only). */
        std::uint64_t prof_from = 0;
        /** Consumed any response yet (profiler phase tracking). */
        bool prof_consumed = false;
    };

    /** An element of the response FIFO. */
    struct Response
    {
        std::uint64_t ready = 0; ///< cycle data+math are available
        int slot = 0;
        std::uint32_t consumers = 0; ///< thread mask
        bvh::NodeRef ref;
        /** Ray owner per consumer thread (issue-time snapshot). */
        std::array<std::int8_t, kWarpSize> mains{};
        /** Serving memory level (prof::MemLevel; profiler only). */
        std::int8_t level = 0;

        bool operator>(const Response &o) const { return ready > o.ready; }
    };

    /** Min-heap push onto responses_ (what priority_queue::push does). */
    void pushResponse(Response r);
    /** Min-heap pop of responses_.front(). */
    Response popResponse();

    bool threadBusy(const ThreadState &t) const
    { return t.pending || !t.stack.empty(); }

    /** Pop-side of the node-tracking discipline (DFS back/BFS front). */
    StackEntry popWork(ThreadState &t) const;
    const StackEntry &peekWork(const ThreadState &t) const;
    /** Steal-side pop (honours steal_from_bottom). */
    StackEntry popSteal(ThreadState &t) const;
    void pushWork(ThreadState &t, const StackEntry &e);

    /** Drop stale TOS entries (entry_t >= current search limit). */
    void dropStaleWork(int slot, WarpEntry &w, int tid,
                       std::uint64_t now);

    /** Current search limit for ray owner @p main. */
    float searchLimit(const WarpEntry &w, int main) const;

    bool tryIssue(std::uint64_t now);
    void runLbu(std::uint64_t now);
    bool processOneResponse(std::uint64_t now);
    void processNode(int slot, WarpEntry &w, int tid, bvh::NodeRef ref,
                     int main, std::uint64_t now);

    /** Quantized-ray key for the intersection predictor. */
    std::size_t predictorIndex(const geom::Ray &ray) const;
    void predictorSeed(WarpEntry &w, int tid);
    void predictorLearn(const WarpEntry &w);
    void maybeRetire(int slot, std::uint64_t now);
    void recordBusyEdge(int slot, int tid, std::uint64_t now);
    /** All-lane busy edges for ray-sampled warps (fig11 timelines). */
    void recordRayEdges(int slot, const WarpEntry &w, std::uint64_t now);

    const bvh::FlatBvh &bvh_;
    const scene::Mesh &mesh_;
    TraceConfig cfg_;
    FetchFn fetch_;
    RtUnitStats stats_;

    std::vector<WarpEntry> warps_;
    int resident_ = 0;
    int rr_next_ = 0; ///< round-robin warp pointer

    /**
     * The response FIFO, kept as an explicit min-heap on `ready`
     * (std::push_heap/std::pop_heap — behaviourally identical to the
     * std::priority_queue it replaces) so the audit layer can iterate
     * outstanding responses per warp slot.
     */
    std::vector<Response> responses_;

    stats::TimelineRecorder *timeline_ = nullptr;
    int timeline_slot_ = -1;
    bool timeline_armed_ = false;
    int timeline_skip_ = 0;

    /**
     * Intersection-predictor table: prim id or UINT32_MAX. May be
     * shared across RT units (see sharePredictor()).
     */
    std::shared_ptr<std::vector<std::uint32_t>> predictor_;
    std::uint64_t last_tick_ = 0;

    /** Observability hooks (all null/unused when tracing is off). */
    cooprt::trace::Registry *metrics_registry_ = nullptr;
    cooprt::trace::Tracer *tracer_ = nullptr;
    cooprt::trace::Histogram *latency_hist_ = nullptr;
    int trace_pid_ = 0;

    /**
     * Stall-attribution state (all dormant while prof_ is null; see
     * attachProf). Accounting runs in two passes per tick: a gap
     * pass at tick entry covers the idle-skipped cycles since the
     * last tick from the frozen pre-tick state, and an end-of-tick
     * pass classifies the current cycle with the per-slot progress /
     * steal event masks recorded during the tick.
     */
    void profAccount(std::uint64_t now, bool end_of_tick);

    cooprt::prof::RtUnitProfile *prof_ = nullptr;
    ProfLevelFn prof_level_;
    /** Ray provenance recorder (dormant while null; see attachRayTrace). */
    cooprt::raytrace::UnitRecorder *ray_ = nullptr;
    /** Serving-level reader for sampled-ray fetch events. */
    ProfLevelFn ray_level_;
    /** BVH-topology profiler (dormant while null; see attachMemscope). */
    cooprt::memscope::UnitScope *mscope_ = nullptr;
    /** Serving-level reader for memscope fetch tagging. */
    ProfLevelFn mscope_level_;
    /** Slots that issued a fetch or consumed a response this tick. */
    std::uint64_t prof_progress_ = 0;
    /** Slots the LBU served this tick. */
    std::uint64_t prof_stolen_ = 0;
    /** Last cycle the end-of-tick pass accounted (kNever = none). */
    std::uint64_t prof_accounted_ = kNever;

#if COOPRT_CHECK_ENABLED
    /**
     * Audit-layer state (check builds only; see DESIGN.md invariant
     * catalogue). Validates the warp-buffer/response/LBU bookkeeping
     * at the end of every tick. Read-only over simulated state.
     */
    void auditInvariants(std::uint64_t now) const;

    std::string check_label_ = "rtunit";
    /** Trace_rays submitted (for rtunit.warp_conservation). */
    std::uint64_t audit_submitted_ = 0;
    /** Node fetches issued this tick (rtunit.single_issue_per_cycle). */
    mutable int audit_issues_this_tick_ = 0;
    /** Architectural traversal-stack depth bound for this BVH. */
    std::size_t check_stack_bound_ = 0;
#endif
};

} // namespace cooprt::rtunit

#endif // COOPRT_RTUNIT_RT_UNIT_HPP

/**
 * @file
 * Configuration of the RT unit's traversal behaviour: baseline
 * (paper Algorithm 1) vs CoopRT (Algorithm 2) and its variants.
 */

#ifndef COOPRT_RTUNIT_TRACE_CONFIG_HPP
#define COOPRT_RTUNIT_TRACE_CONFIG_HPP

#include <cstdint>
#include <stdexcept>

namespace cooprt::rtunit {

/** Number of threads per warp (paper: 32, lock-step SIMT). */
constexpr int kWarpSize = 32;

/**
 * Node-tracking discipline. The paper's traversal is DFS (stack); its
 * Section 4.2 notes cooperative traversal extends directly to BFS
 * with a queue, helpers stealing from the front — implemented here as
 * an extension.
 */
enum class TraversalOrder { Dfs, Bfs };

/**
 * RT warp-scheduler policy: which warp-buffer entry gets the cycle's
 * memory request ("At each cycle, a warp from the warp buffer is
 * selected", paper Section 2.3).
 */
enum class WarpSchedPolicy
{
    /** Rotate over entries (the default; fair inter-warp overlap). */
    RoundRobin,
    /** Keep serving the same warp until it stalls, then the oldest
     *  (greedy-then-oldest, the GTO policy of GPGPU-Sim). */
    GreedyThenOldest,
    /** Always serve the oldest unstalled trace first. */
    OldestFirst,
};

/** RT-unit configuration knobs evaluated in the paper. */
struct TraceConfig
{
    /** Enable CoopRT cooperative traversal (the paper's proposal). */
    bool coop = false;

    /**
     * Helper/main pairing scope (Section 7.5 / Fig. 19): threads may
     * only help within their subwarp. 32 = whole warp (default
     * CoopRT); 4/8/16 are the cheaper restricted variants. One pair
     * is moved per subwarp per cycle (the paper's first subwarp
     * approach: all subwarps processed together each cycle).
     */
    int subwarp_size = kWarpSize;

    /** Warp-buffer entries in the RT unit (Table 1: 4; Fig. 13 sweep). */
    int warp_buffer_entries = 4;

    /**
     * Nodes the LBU can move per subwarp per cycle (paper: 1; >1 is
     * an ablation of the LBU bandwidth).
     */
    int lbu_moves_per_cycle = 1;

    /**
     * Ablation: steal from the bottom of the main thread's stack
     * (stealing the largest pending subtree) instead of the TOS.
     * The paper argues the choice does not affect parallelization
     * degree; this knob lets the claim be measured.
     */
    bool steal_from_bottom = false;

    /** DFS (paper) or BFS (Section 4.2 generalization). */
    TraversalOrder order = TraversalOrder::Dfs;

    /** RT warp-scheduler policy (ablation; default round-robin). */
    WarpSchedPolicy sched = WarpSchedPolicy::RoundRobin;

    /**
     * When true (default), a thread may only become a helper once its
     * last node fetch has returned — the minimal per-thread main_tid
     * register set of the paper's Fig. 7, and also the faster policy:
     * eagerly re-targeting a still-pending thread parks the stolen
     * node on a thread that cannot issue it, while a ready helper
     * could have taken it (measured in `ablation_design_choices`).
     * When false, an empty-stack thread is re-targetable while its
     * final fetch is in flight, as in Vulkan-sim's list-replay model;
     * work items carry a per-entry ray-owner tag so in-flight
     * responses still update the right ray's min_thit.
     */
    bool helper_requires_idle = true;

    /** Latency of the intersection math pipeline, cycles. */
    std::uint32_t math_latency = 4;

    /**
     * Hardware traversal stack capacity per thread (the paper's area
     * analysis assumes a 16-entry stack). Deeper pushes are counted
     * in `RtUnitStats::stack_overflows` but still modelled
     * functionally, as Vulkan-sim's functional simulator does.
     */
    int stack_capacity = 16;

    /**
     * Model the hit-record store queue (paper Section 5.1: "a store
     * request for the primitive data is inserted to the store queue
     * which can then be read by the closest-hit or any-hit
     * shaders"). Each thread that found a hit writes one hit record
     * through the memory hierarchy at retire time; the traffic is
     * counted but does not delay the retire (stores are buffered).
     */
    bool model_hit_stores = true;
    /** Bytes of one stored hit record (t, prim id, barycentrics...). */
    std::uint32_t hit_record_bytes = 32;

    /**
     * Treelet-prefetcher-style child prefetch (Chou et al., MICRO'23,
     * discussed in the paper's Section 8.2): when a node's children
     * test as hit, their records are prefetched into the cache
     * hierarchy immediately, so the later demand fetch usually hits
     * L1 or merges with the in-flight fill. Costs real bandwidth in
     * the model, as in the paper's discussion of combining CoopRT
     * with prefetching.
     */
    bool child_prefetch = false;

    /**
     * Intersection predictor (Liu et al., MICRO'21, the paper's
     * Section 8.2): a small per-RT-unit table maps a quantized
     * (origin, direction) key to the primitive a similar past ray
     * hit. On trace start the predicted primitive is tested first;
     * a confirmed hit seeds min_thit and prunes most of the
     * traversal. Effective for the localized AO/SH rays, per the
     * paper's characterization.
     */
    bool intersection_predictor = false;
    /** Predictor table entries (direct-mapped). */
    int predictor_entries = 1024;

    /** Validate knob values; throws std::invalid_argument. */
    void
    validate() const
    {
        if (subwarp_size != 4 && subwarp_size != 8 &&
            subwarp_size != 16 && subwarp_size != 32)
            throw std::invalid_argument("subwarp_size must be 4/8/16/32");
        if (warp_buffer_entries < 1 || warp_buffer_entries > 64)
            throw std::invalid_argument("warp_buffer_entries in [1,64]");
        if (lbu_moves_per_cycle < 1)
            throw std::invalid_argument("lbu_moves_per_cycle >= 1");
        if (stack_capacity < 1)
            throw std::invalid_argument("stack_capacity >= 1");
        if (predictor_entries < 1)
            throw std::invalid_argument("predictor_entries >= 1");
    }
};

} // namespace cooprt::rtunit

#endif // COOPRT_RTUNIT_TRACE_CONFIG_HPP

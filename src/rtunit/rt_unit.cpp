#include "rtunit/rt_unit.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

#include "geom/rng.hpp"
#include "raytrace/raytrace.hpp"

namespace cooprt::rtunit {

using bvh::NodeRef;
using geom::kNoHit;
using geom::Ray;

static_assert(cooprt::raytrace::kLanes == kWarpSize,
              "raytrace lane count must mirror the warp width");

RtUnit::RtUnit(const bvh::FlatBvh &bvh, const scene::Mesh &mesh,
               const TraceConfig &config, FetchFn fetch)
    : bvh_(bvh), mesh_(mesh), cfg_(config), fetch_(std::move(fetch))
{
    cfg_.validate();
    warps_.resize(std::size_t(cfg_.warp_buffer_entries));
    if (cfg_.intersection_predictor)
        predictor_ = std::make_shared<std::vector<std::uint32_t>>(
            std::size_t(cfg_.predictor_entries), 0xffffffffu);

#if COOPRT_CHECK_ENABLED
    // Architectural stack-depth bound (rtunit.stack_depth_bound): a
    // DFS thread's stack holds at most (width-1) entries per tree
    // level for each of its at most two concurrent work sources (its
    // current subtree plus the children of one in-flight response);
    // BFS queues are only bounded by the ref population. Generous
    // constants keep legitimate runs violation-free; a runaway push
    // loop blows through either bound immediately.
    const bvh::TreeStats ts = bvh_.stats();
    if (cfg_.order == TraversalOrder::Dfs)
        check_stack_bound_ =
            4u * std::size_t(ts.max_depth + 2) * bvh::kWideArity + 16;
    else
        check_stack_bound_ =
            2u * (bvh_.nodeCount() + bvh_.primCount()) + 16;
#endif
}

RtUnit::~RtUnit()
{
    if (metrics_registry_ != nullptr)
        metrics_registry_->unregisterOwner(this);
}

void
RtUnit::attachTrace(cooprt::trace::Registry *registry,
                    cooprt::trace::Tracer *tracer, int sm_id)
{
    tracer_ = tracer;
    trace_pid_ = sm_id;
    metrics_registry_ = registry;
    if (registry == nullptr)
        return;

    const std::string p = "rtunit.sm" + std::to_string(sm_id) + ".";
    auto add = [&](const char *name, const std::uint64_t *src) {
        registry->probe(p + name, [src] { return double(*src); },
                        this);
    };
    add("node_fetches", &stats_.node_fetches);
    add("leaf_fetches", &stats_.leaf_fetches);
    add("box_tests", &stats_.box_tests);
    add("tri_tests", &stats_.tri_tests);
    add("steals", &stats_.steals);
    add("coalesced_threads", &stats_.coalesced_threads);
    add("stale_pops", &stats_.stale_pops);
    add("stack_overflows", &stats_.stack_overflows);
    add("retired_warps", &stats_.retired_warps);
    add("issue_cycles", &stats_.issue_cycles);
    add("prefetches", &stats_.prefetches);
    add("predictor_hits", &stats_.predictor_hits);
    add("predictor_misses", &stats_.predictor_misses);
    add("hit_stores", &stats_.hit_stores);
    registry->probe(p + "warpbuf.occupancy",
                    [this] { return double(resident_); }, this);
    registry->probe(p + "responses.pending",
                    [this] { return double(responses_.size()); },
                    this);
    latency_hist_ = &registry->histogram(p + "trace_latency");
}

void
RtUnit::attachProf(cooprt::prof::RtUnitProfile *profile,
                   ProfLevelFn level)
{
    prof_ = profile;
    prof_level_ = std::move(level);
}

void
RtUnit::attachRayTrace(cooprt::raytrace::UnitRecorder *recorder,
                       ProfLevelFn level)
{
    ray_ = recorder;
    ray_level_ = std::move(level);
}

void
RtUnit::attachMemscope(cooprt::memscope::UnitScope *scope,
                       ProfLevelFn level)
{
    mscope_ = scope;
    mscope_level_ = std::move(level);
}

std::size_t
RtUnit::predictorIndex(const Ray &ray) const
{
    // Quantize origin to a coarse grid over the scene bounds and the
    // direction to a 4x4x4 lattice; mix into a table index.
    const geom::AABB &b = bvh_.rootBounds();
    const geom::Vec3 e = b.extent();
    auto q = [](float v, float lo, float ext, int cells) {
        if (ext <= 0.0f)
            return 0;
        int c = int((v - lo) / ext * float(cells));
        return c < 0 ? 0 : (c >= cells ? cells - 1 : c);
    };
    // Short (occlusion-length) rays hit nearby geometry almost
    // independently of their direction: key them by a fine origin
    // grid with no direction bits (a wrong prediction is filtered by
    // the confirmation test anyway). Long rays use a coarse origin
    // grid plus direction.
    const bool short_ray = ray.tmax < 0.25f * e.length();
    const int cells = short_ray ? 256 : 16;
    std::uint64_t key = short_ray ? 1 : 2;
    key = key * 1031 + std::uint64_t(q(ray.orig.x, b.lo.x, e.x, cells));
    key = key * 1031 + std::uint64_t(q(ray.orig.y, b.lo.y, e.y, cells));
    key = key * 1031 + std::uint64_t(q(ray.orig.z, b.lo.z, e.z, cells));
    if (!short_ray) {
        key = key * 31 + std::uint64_t(q(ray.dir.x, -1.0f, 2.0f, 4));
        key = key * 31 + std::uint64_t(q(ray.dir.y, -1.0f, 2.0f, 4));
        key = key * 31 + std::uint64_t(q(ray.dir.z, -1.0f, 2.0f, 4));
    }
    return std::size_t(geom::mix64(key) %
                       std::uint64_t(cfg_.predictor_entries));
}

void
RtUnit::predictorSeed(WarpEntry &w, int tid)
{
    ThreadState &th = w.th[std::size_t(tid)];
    const std::uint32_t prim = (*predictor_)[predictorIndex(th.ray)];
    if (prim == 0xffffffffu || prim >= mesh_.size()) {
        stats_.predictor_misses++;
        return;
    }
    const float thit = mesh_.tri(prim).intersect(th.ray, th.ray.tmax);
    if (thit == kNoHit) {
        stats_.predictor_misses++;
        return;
    }
    // A confirmed prediction is a real intersection: it can seed
    // min_thit safely — traversal will still find anything closer.
    stats_.predictor_hits++;
    w.min_thit[std::size_t(tid)] = thit;
    geom::HitRecord &rec = w.hit[std::size_t(tid)];
    rec.thit = thit;
    rec.prim_id = prim;
    rec.normal = mesh_.tri(prim).shadingNormal(th.ray.dir);
    if (w.any_hit)
        w.min_thit[std::size_t(tid)] = 0.0f; // done immediately
}

void
RtUnit::predictorLearn(const WarpEntry &w)
{
    for (int t = 0; t < kWarpSize; ++t) {
        const ThreadState &th = w.th[std::size_t(t)];
        if (!th.active || !w.hit[std::size_t(t)].hit())
            continue;
        (*predictor_)[predictorIndex(th.ray)] =
            w.hit[std::size_t(t)].prim_id;
    }
}

int
RtUnit::freeSlots() const
{
    return int(warps_.size()) - resident_;
}

void
RtUnit::pushResponse(Response r)
{
    // Exactly std::priority_queue<Response, vector, greater>::push.
    responses_.push_back(std::move(r));
    std::push_heap(responses_.begin(), responses_.end(),
                   std::greater<Response>{});
}

RtUnit::Response
RtUnit::popResponse()
{
    std::pop_heap(responses_.begin(), responses_.end(),
                  std::greater<Response>{});
    Response r = std::move(responses_.back());
    responses_.pop_back();
    return r;
}

int
RtUnit::submit(const TraceJob &job, std::uint64_t now, RetireFn on_retire)
{
    int slot = -1;
    for (std::size_t i = 0; i < warps_.size(); ++i) {
        if (!warps_[i].valid) {
            slot = int(i);
            break;
        }
    }
    if (slot < 0)
        throw std::runtime_error("RtUnit::submit: warp buffer full");

    WarpEntry &w = warps_[std::size_t(slot)];
    w = WarpEntry{};
    w.valid = true;
    w.any_hit = job.any_hit;
    w.query = job.query;
    w.issue_cycle = now;
    w.on_retire = std::move(on_retire);

    for (int t = 0; t < kWarpSize; ++t) {
        ThreadState &th = w.th[std::size_t(t)];
        th.main_tid = t; // paper: main_tid initialized to tid
        w.min_thit[std::size_t(t)] = kNoHit;
        if (!job.rays[std::size_t(t)])
            continue;
        th.active = true;
        th.ray = *job.rays[std::size_t(t)];
        // Algorithm 1 lines 1-2: test the root AABB, push on hit.
        const float t_root = bvh_.rootBounds().intersect(
            th.ray, th.ray.tmax);
        if (t_root != kNoHit && bvh_.primCount() > 0)
            th.stack.push_back(
                {bvh_.root(), t_root, std::int8_t(t)});
        // Query rays have no meaningful triangle intersection: the
        // predictor would seed from (and later learn) degenerate
        // proxy hits, polluting the shared table.
        if (cfg_.intersection_predictor &&
            w.query == geom::QueryKind::None)
            predictorSeed(w, t);
    }
    resident_++;
    COOPRT_CHECK_ONLY(audit_submitted_++;)

    if (timeline_armed_ && timeline_slot_ < 0) {
        if (timeline_skip_ > 0) {
            timeline_skip_--;
        } else {
            timeline_slot_ = slot;
            w.record_timeline = true;
            for (int t = 0; t < kWarpSize; ++t)
                timeline_->setBusy(t, now,
                                   threadBusy(w.th[std::size_t(t)]));
        }
    }

    if (ray_ != nullptr) {
        // Sampling decision + launch events; before maybeRetire so a
        // warp whose rays all missed the scene box still records its
        // (instant) lifecycle.
        std::uint32_t active_mask = 0, root_mask = 0;
        for (int t = 0; t < kWarpSize; ++t) {
            const ThreadState &th = w.th[std::size_t(t)];
            if (th.active)
                active_mask |= 1u << t;
            if (!th.stack.empty())
                root_mask |= 1u << t;
        }
        ray_->onSubmit(slot, now, active_mask, root_mask);
    }

    // A warp whose rays all missed the scene box retires immediately.
    maybeRetire(slot, now);

    if (prof_ != nullptr && w.valid) {
        // Attribution starts at the submit cycle. A retired slot may
        // be recycled within one tick, so drop any event bits its
        // previous occupant left behind; and when the end-of-tick
        // pass for this cycle already ran (post-tick submits from the
        // SM), classify the submit cycle right away so it is not
        // lost from the conservation sum.
        prof_progress_ &= ~(1ull << std::uint64_t(slot));
        prof_stolen_ &= ~(1ull << std::uint64_t(slot));
        w.prof_from = now;
        if (prof_accounted_ == now)
            profAccount(now, true);
    }
    return slot;
}

float
RtUnit::searchLimit(const WarpEntry &w, int main) const
{
    const ThreadState &owner = w.th[std::size_t(main)];
    const float mt = w.min_thit[std::size_t(main)];
    return mt < owner.ray.tmax ? mt : owner.ray.tmax;
}

RtUnit::StackEntry
RtUnit::popWork(ThreadState &t) const
{
    StackEntry e;
    if (cfg_.order == TraversalOrder::Dfs) {
        e = t.stack.back();
        t.stack.pop_back();
    } else {
        e = t.stack.front();
        t.stack.pop_front();
    }
    return e;
}

const RtUnit::StackEntry &
RtUnit::peekWork(const ThreadState &t) const
{
    return cfg_.order == TraversalOrder::Dfs ? t.stack.back()
                                             : t.stack.front();
}

RtUnit::StackEntry
RtUnit::popSteal(ThreadState &t) const
{
    StackEntry e;
    if (cfg_.order == TraversalOrder::Bfs || !cfg_.steal_from_bottom) {
        // Paper: helper pops the main's TOS (or queue front for BFS).
        return const_cast<RtUnit *>(this)->popWork(t);
    }
    // Ablation: steal the oldest (bottom) entry — largest subtree.
    e = t.stack.front();
    t.stack.pop_front();
    return e;
}

void
RtUnit::pushWork(ThreadState &t, const StackEntry &e)
{
    t.stack.push_back(e);
    if (int(t.stack.size()) > cfg_.stack_capacity)
        stats_.stack_overflows++;
#if COOPRT_CHECK_ENABLED
    // Seeded bug: a runaway push loop floods the stack, the class of
    // defect rtunit.stack_depth_bound exists to catch.
    if (COOPRT_MUTATE(StackOverPush))
        for (std::size_t i = 0; i <= check_stack_bound_; ++i)
            t.stack.push_back(e);
#endif
}

void
RtUnit::dropStaleWork(int slot, WarpEntry &w, int tid,
                      std::uint64_t now)
{
    ThreadState &t = w.th[std::size_t(tid)];
    while (!t.stack.empty()) {
        const StackEntry &top = peekWork(t);
        if (top.entry_t < searchLimit(w, top.main))
            break;
        const StackEntry dropped = popWork(t);
        stats_.stale_pops++;
        if (ray_ != nullptr)
            ray_->onPop(slot, tid, dropped.main, dropped.ref.raw(),
                        true, now);
    }
}

bool
RtUnit::tryIssue(std::uint64_t now)
{
    const int n = int(warps_.size());
    // Warp selection order per the configured scheduler policy.
    std::array<int, 64> order;
    switch (cfg_.sched) {
      case WarpSchedPolicy::RoundRobin:
        for (int k = 0; k < n; ++k)
            order[std::size_t(k)] = (rr_next_ + k) % n;
        break;
      case WarpSchedPolicy::GreedyThenOldest:
      case WarpSchedPolicy::OldestFirst: {
        // Oldest = smallest issue_cycle among valid entries. Greedy
        // starts from the last-served slot instead.
        for (int k = 0; k < n; ++k)
            order[std::size_t(k)] = k;
        std::sort(order.begin(), order.begin() + n, [&](int a, int b) {
            const WarpEntry &wa = warps_[std::size_t(a)];
            const WarpEntry &wb = warps_[std::size_t(b)];
            if (wa.valid != wb.valid)
                return wa.valid;
            return wa.issue_cycle < wb.issue_cycle;
        });
        if (cfg_.sched == WarpSchedPolicy::GreedyThenOldest &&
            warps_[std::size_t(rr_next_ % n)].valid) {
            // Move the last-served slot to the front.
            const int greedy = rr_next_ % n;
            auto it = std::find(order.begin(), order.begin() + n,
                                greedy);
            std::rotate(order.begin(), it, it + 1);
        }
        break;
      }
    }

    for (int k = 0; k < n; ++k) {
        const int slot = order[std::size_t(k)];
        WarpEntry &w = warps_[std::size_t(slot)];
        if (!w.valid)
            continue;

        // Single pass: pop-time elimination (paper Section 6.1) for
        // threads with work, and find the first ready thread.
        int first_ready = -1;
        for (int t = 0; t < kWarpSize; ++t) {
            ThreadState &th = w.th[std::size_t(t)];
            if (th.stack.empty())
                continue;
            dropStaleWork(slot, w, t, now);
            if (first_ready < 0 && !th.pending && !th.stack.empty())
                first_ready = t;
        }
        if (first_ready < 0) {
            // Dropping stale entries may have finished this warp.
            maybeRetire(slot, now);
            continue;
        }

        // Coalesce: all ready threads whose next node matches the
        // selected unique address pop together and share the fetch.
        const NodeRef ref =
            peekWork(w.th[std::size_t(first_ready)]).ref;
        std::uint32_t consumers = 0;
        std::array<std::int8_t, kWarpSize> mains{};
        for (int t = first_ready; t < kWarpSize; ++t) {
            ThreadState &th = w.th[std::size_t(t)];
            if (th.pending || th.stack.empty())
                continue;
            if (!(peekWork(th).ref == ref))
                continue;
            const StackEntry e = popWork(th);
            th.pending = true;
            th.pending_ref = ref;
            th.pending_main = e.main;
            mains[std::size_t(t)] = e.main;
            consumers |= (1u << t);
        }

        const std::uint64_t data_ready =
            fetch_(bvh_.addressOf(ref), bvh_.fetchBytes(ref), now);
        std::int8_t level = 0;
        if (prof_ != nullptr) {
            prof_progress_ |= 1ull << std::uint64_t(slot);
            if (prof_level_)
                level = std::int8_t(prof_level_());
        } else if (mscope_ != nullptr && mscope_level_) {
            // The topology profiler needs the serving level of every
            // fetch (same const read of MemorySystem::lastFetchDepth
            // the profiler does).
            level = std::int8_t(mscope_level_());
        } else if (ray_ != nullptr && ray_->slotSampled(slot) &&
                   ray_level_) {
            // Without the profiler the serving level is only needed
            // for sampled-ray provenance (same const read of
            // MemorySystem::lastFetchDepth the profiler does).
            level = std::int8_t(ray_level_());
        }
        if (ray_ != nullptr && ray_->slotSampled(slot))
            for (int t = 0; t < kWarpSize; ++t)
                if (consumers & (1u << t)) {
                    ray_->onPop(slot, t,
                                mains[std::size_t(t)], ref.raw(),
                                false, now);
                    ray_->onFetchIssued(slot, t,
                                        mains[std::size_t(t)],
                                        ref.raw(), level, now);
                }
        pushResponse(Response{data_ready + cfg_.math_latency, slot,
                              consumers, ref, mains, level});
        w.outstanding++;
        COOPRT_CHECK_ONLY(audit_issues_this_tick_++;)

        stats_.issue_cycles++;
        stats_.coalesced_threads +=
            std::uint64_t(std::popcount(consumers));
        if (ref.isLeaf())
            stats_.leaf_fetches++;
        else
            stats_.node_fetches++;

        if (mscope_ != nullptr) {
            // Tag the fetch: stable node id, tree depth, serving
            // level, consumer lanes (the per-depth divergence axis)
            // and the warp's traversal phase. Observation only.
            bool any_work = false;
            for (int t = 0; t < kWarpSize && !any_work; ++t)
                any_work = !w.th[std::size_t(t)].stack.empty();
            mscope_->record(
                bvh_.nodeIdOf(ref), bvh_.depthOf(ref), int(level),
                std::popcount(consumers),
                int(prof::phaseOf(w.prof_consumed, any_work)),
                bvh_.fetchBytes(ref));
        }

        if (w.record_timeline)
            for (int t = 0; t < kWarpSize; ++t)
                recordBusyEdge(slot, t, now);
        recordRayEdges(slot, w, now);

        // Round-robin rotates away; greedy keeps serving this warp.
        rr_next_ = cfg_.sched == WarpSchedPolicy::GreedyThenOldest
                       ? slot
                       : (slot + 1) % n;
        return true;
    }
    return false;
}

void
RtUnit::runLbu(std::uint64_t now)
{
    if (!cfg_.coop)
        return;

    // The LBU serves one warp per cycle: the first (round-robin) warp
    // that contains at least one helper/main pair. Within that warp,
    // every subwarp may move up to lbu_moves_per_cycle nodes (the
    // paper's "all subwarps processed together" variant).
    const int n = int(warps_.size());
    for (int k = 0; k < n; ++k) {
        const int slot = (rr_next_ + k) % n;
        WarpEntry &w = warps_[std::size_t(slot)];
        if (!w.valid)
            continue;

        bool any_move = false;
        const int groups = kWarpSize / cfg_.subwarp_size;
        for (int g = 0; g < groups; ++g) {
            const int lo = g * cfg_.subwarp_size;
            const int hi = lo + cfg_.subwarp_size;
            for (int move = 0; move < cfg_.lbu_moves_per_cycle;
                 ++move) {
                // Priority encoders (Fig. 8): lowest-index helper
                // (empty stack; in the default Vulkan-sim-like model
                // an in-flight final fetch does not disqualify it)
                // and lowest-index main with a stealable node beyond
                // its own next pop.
                int helper = -1, main = -1;
                for (int t = lo; t < hi; ++t) {
                    const ThreadState &th = w.th[std::size_t(t)];
                    if (helper < 0 && th.stack.empty() &&
                        (!cfg_.helper_requires_idle || !th.pending))
                        helper = t;
                    if (main < 0 &&
                        (th.stack.size() >= 2 ||
                         (th.pending && !th.stack.empty())))
                        main = t;
                }
                if (helper < 0 || main < 0 || helper == main)
                    break;

#if COOPRT_CHECK_ENABLED
                // Seeded bug: retarget a busy thread as the helper —
                // the steal then destroys that thread's own work.
                if (COOPRT_MUTATE_ARMED(IllegalLbuHelper)) {
                    for (int t = lo; t < hi; ++t) {
                        if (t == main ||
                            w.th[std::size_t(t)].stack.empty())
                            continue;
                        if (COOPRT_MUTATE(IllegalLbuHelper))
                            helper = t;
                        break;
                    }
                }
                {
                    const ThreadState &hth = w.th[std::size_t(helper)];
                    const ThreadState &mth = w.th[std::size_t(main)];
                    COOPRT_AUDIT(
                        check_label_, "rtunit.lbu_steal_legality", now,
                        helper != main &&
                            helper / cfg_.subwarp_size ==
                                main / cfg_.subwarp_size &&
                            hth.stack.empty() &&
                            (!cfg_.helper_requires_idle ||
                             !hth.pending) &&
                            (mth.stack.size() >= 2 ||
                             (mth.pending && !mth.stack.empty())),
                        "helper=" + std::to_string(helper) +
                            " (stack=" +
                            std::to_string(hth.stack.size()) +
                            " pending=" +
                            std::to_string(hth.pending) + ") main=" +
                            std::to_string(main) + " (stack=" +
                            std::to_string(mth.stack.size()) +
                            " pending=" +
                            std::to_string(mth.pending) + ")");
                }
#endif

                ThreadState &ms = w.th[std::size_t(main)];
                ThreadState &hs = w.th[std::size_t(helper)];
                const StackEntry stolen = popSteal(ms);
                pushWork(hs, stolen);
                if (ray_ != nullptr)
                    ray_->onSteal(slot, main, helper, stolen.main,
                                  hs.main_tid != stolen.main, now);
                // The stolen entry carries its ray owner; the helper
                // records it as its current target (status/debug).
                hs.main_tid = stolen.main;
                stats_.steals++;
                if (prof_ != nullptr)
                    prof_stolen_ |= 1ull << std::uint64_t(slot);
                any_move = true;
                COOPRT_TRACE_INSTANT(tracer_, "rtunit.lbu", "steal",
                                     trace_pid_, slot, now);

                if (w.record_timeline) {
                    recordBusyEdge(slot, helper, now);
                    recordBusyEdge(slot, main, now);
                }
                recordRayEdges(slot, w, now);
            }
        }
        if (any_move)
            return; // one warp served per cycle
    }
}

void
RtUnit::processNode(int slot, WarpEntry &w, int tid, NodeRef ref,
                    int main, std::uint64_t now)
{
    ThreadState &t = w.th[std::size_t(tid)];
    const Ray &ray = w.th[std::size_t(main)].ray;

    if (ref.isLeaf()) {
        std::uint32_t tested = 0;
        for (std::uint32_t k = 0; k < ref.primCount(); ++k) {
            const std::uint32_t prim = bvh_.primAt(ref.firstSlot() + k);
            stats_.tri_tests++;
            tested++;
            const float limit = searchLimit(w, main);
            const float thit =
                w.query == geom::QueryKind::None
                    ? mesh_.tri(prim).intersect(ray, limit)
                    : geom::queryLeafTest(w.query, mesh_.tri(prim),
                                          ray, limit);
            if (thit != kNoHit) {
                // Paper Section 5.3: helpers update the *main*
                // thread's min_thit register.
                w.min_thit[std::size_t(main)] = thit;
                geom::HitRecord &rec = w.hit[std::size_t(main)];
                rec.thit = thit;
                rec.prim_id = prim;
                // Proxy triangles are degenerate; their shading
                // normal is undefined (0/0), so query hits carry
                // none.
                rec.normal = w.query == geom::QueryKind::None
                                 ? mesh_.tri(prim).shadingNormal(
                                       ray.dir)
                                 : geom::Vec3{};
                if (w.any_hit) {
                    // Any-hit: this ray is done. Collapsing the
                    // search limit to zero makes every remaining
                    // stack entry of this ray stale, so the drops
                    // happen for free at pop time.
                    w.min_thit[std::size_t(main)] = 0.0f;
                    break;
                }
            }
        }
        if (ray_ != nullptr)
            ray_->onLeafTests(slot, tid, main, tested, now);
        return;
    }

    const int n = bvh_.childCount(ref);
    for (int i = 0; i < n; ++i) {
        const bvh::ChildInfo c = bvh_.child(ref, i);
        stats_.box_tests++;
        const float limit = searchLimit(w, main);
        const float thit = c.box.intersect(ray, limit);
        if (thit != kNoHit) {
            pushWork(t, {c.ref, thit, std::int8_t(main)});
            if (ray_ != nullptr)
                ray_->onNodePush(slot, tid, main, c.ref.raw(), now);
            if (cfg_.child_prefetch) {
                // Treelet-style prefetch: warm the hierarchy with
                // the child's record so the demand fetch hits L1 or
                // merges with this fill. The ready time is ignored;
                // the bandwidth cost is real.
                fetch_(bvh_.addressOf(c.ref), bvh_.fetchBytes(c.ref),
                       now);
                stats_.prefetches++;
            }
        }
    }
}

bool
RtUnit::processOneResponse(std::uint64_t now)
{
    if (responses_.empty() || responses_.front().ready > now)
        return false;

    const Response r = popResponse();

    WarpEntry &w = warps_[std::size_t(r.slot)];
    assert(w.valid);
#if COOPRT_CHECK_ENABLED
    // Seeded bug: the response is accounted for but its data never
    // delivered — the consuming threads stay pending forever.
    if (COOPRT_MUTATE(DropResponse)) {
        // cooprt-lint: allow(check-purity) seeded-bug mutation:
        // deliberately corrupts state, armed only under --mutate
        w.outstanding--;
        return true;
    }
#endif
    const bool ray_on = ray_ != nullptr && ray_->slotSampled(r.slot);
    for (int t = 0; t < kWarpSize; ++t) {
        if (!(r.consumers & (1u << t)))
            continue;
        ThreadState &th = w.th[std::size_t(t)];
        assert(th.pending_main == r.mains[std::size_t(t)]);
        if (th.pending && th.pending_ref == r.ref)
            th.pending = false;
        if (ray_on)
            ray_->onFetchConsumed(r.slot, t, r.mains[std::size_t(t)],
                                  r.ref.raw(), r.level, now);
        processNode(r.slot, w, t, r.ref, r.mains[std::size_t(t)], now);
    }
    w.outstanding--;
    // Seeded bug: one response consumed, accounted for twice.
    if (COOPRT_MUTATE(DoubleConsumeResponse))
        w.outstanding--;

    if (prof_ != nullptr) {
        prof_progress_ |= 1ull << std::uint64_t(r.slot);
        w.prof_consumed = true;
    } else if (mscope_ != nullptr) {
        // The topology profiler shares the phase flag (plain observer
        // store, no timing effect).
        w.prof_consumed = true;
    }

    if (w.record_timeline)
        for (int t = 0; t < kWarpSize; ++t)
            recordBusyEdge(r.slot, t, now);
    recordRayEdges(r.slot, w, now);

    maybeRetire(r.slot, now);
    return true;
}

void
RtUnit::maybeRetire(int slot, std::uint64_t now)
{
    WarpEntry &w = warps_[std::size_t(slot)];
    if (!w.valid || w.outstanding > 0)
        return;
    for (int t = 0; t < kWarpSize; ++t)
        if (threadBusy(w.th[std::size_t(t)]))
            return;

    TraceResult result;
    result.hits = w.hit;
    result.issue_cycle = w.issue_cycle;
    result.retire_cycle = now;

    if (cfg_.intersection_predictor &&
        w.query == geom::QueryKind::None)
        predictorLearn(w);

    if (cfg_.model_hit_stores) {
        // Store-queue writes of the hit records (Section 5.1); the
        // closest-hit shader reads them back. Buffered: they consume
        // bandwidth but do not delay the retire.
        for (int t = 0; t < kWarpSize; ++t) {
            if (!w.th[std::size_t(t)].active ||
                !w.hit[std::size_t(t)].hit())
                continue;
            const std::uint64_t addr =
                kHitBufferBase +
                std::uint64_t(slot * kWarpSize + t) *
                    cfg_.hit_record_bytes;
            fetch_(addr, cfg_.hit_record_bytes, now);
            stats_.hit_stores++;
        }
    }

    stats_.retired_warps++;
    const std::uint64_t lat = result.latency();
    stats_.retired_trace_latency += lat;
    if (lat > stats_.max_trace_latency)
        stats_.max_trace_latency = lat;
    if (latency_hist_ != nullptr)
        latency_hist_->record(lat);

    if (w.record_timeline) {
        for (int t = 0; t < kWarpSize; ++t)
            timeline_->setBusy(t, now, false);
        timeline_slot_ = -1;
        timeline_armed_ = false; // record one warp per arm
    }

    if (ray_ != nullptr)
        ray_->onRetire(slot, now);

    RetireFn cb = std::move(w.on_retire);
    w = WarpEntry{};
    // Seeded bug: the slot is recycled but the residency ledger keeps
    // counting it (use-after-free of the warp-buffer entry class).
    if (!COOPRT_MUTATE(LeakWarpSlot))
        resident_--;
    if (cb)
        cb(slot, result);
}

void
RtUnit::recordBusyEdge(int slot, int tid, std::uint64_t now)
{
    if (timeline_ == nullptr || slot != timeline_slot_)
        return;
    const WarpEntry &w = warps_[std::size_t(slot)];
    timeline_->setBusy(tid, now, threadBusy(w.th[std::size_t(tid)]));
}

void
RtUnit::recordRayEdges(int slot, const WarpEntry &w, std::uint64_t now)
{
    if (ray_ == nullptr || !ray_->wantLaneEdges(slot))
        return;
    // All-lane edges at every state-changing site; the timeline
    // recorder registers transitions only, so this reproduces the
    // legacy armTimeline recording exactly (fig11).
    for (int t = 0; t < kWarpSize; ++t)
        ray_->onLaneEdge(slot, t, threadBusy(w.th[std::size_t(t)]),
                         now);
}

void
RtUnit::tick(std::uint64_t now)
{
    COOPRT_AUDIT(check_label_, "rtunit.monotone_tick", now,
                 now >= last_tick_,
                 "tick at " + std::to_string(now) + " after " +
                     std::to_string(last_tick_));
    assert(now >= last_tick_);
    last_tick_ = now;

    COOPRT_CHECK_ONLY(audit_issues_this_tick_ = 0;)
    if (prof_ != nullptr) {
        // Attribute the idle-skipped gap since the last tick from
        // the frozen pre-tick state, then start collecting this
        // tick's per-slot progress/steal events.
        profAccount(now, false);
        prof_progress_ = 0;
        prof_stolen_ = 0;
    }
    tryIssue(now);
    runLbu(now);
    processOneResponse(now);
    if (prof_ != nullptr)
        profAccount(now, true);
#if COOPRT_CHECK_ENABLED
    auditInvariants(now);
#endif
}

void
RtUnit::profAccount(std::uint64_t now, bool end_of_tick)
{
    // Earliest-ready outstanding response (and its serving level)
    // per slot, for response-starved attribution.
    std::array<std::uint64_t, 64> best;
    std::array<std::int8_t, 64> level{};
    best.fill(kNever);
    for (const Response &r : responses_) {
        if (r.ready < best[std::size_t(r.slot)]) {
            best[std::size_t(r.slot)] = r.ready;
            level[std::size_t(r.slot)] = r.level;
        }
    }

    COOPRT_CHECK_ONLY(std::uint64_t audit_expected = 0;)
    COOPRT_CHECK_ONLY(const std::uint64_t audit_before =
                          prof_->residentBucketSum();)

    for (std::size_t slot = 0; slot < warps_.size(); ++slot) {
        WarpEntry &w = warps_[slot];
        if (!w.valid)
            continue;
        std::uint64_t weight;
        if (end_of_tick) {
            if (w.prof_from > now)
                continue; // this cycle is already attributed
            weight = 1;
            w.prof_from = now + 1;
        } else {
            if (w.prof_from >= now)
                continue; // no idle-skipped gap to attribute
            weight = now - w.prof_from;
            w.prof_from = now;
        }
        COOPRT_CHECK_ONLY(audit_expected += weight;)

        // Seeded bug (check builds): this warp's cycles silently
        // vanish from the attribution — the class of defect
        // prof.bucket_conservation exists to catch.
        if (COOPRT_MUTATE(ProfMisattribution))
            continue;

        prof::WarpView v;
        v.coop = cfg_.coop;
        v.outstanding = w.outstanding;
        if (end_of_tick) {
            v.progressed = ((prof_progress_ >> slot) & 1) != 0;
            v.stole = ((prof_stolen_ >> slot) & 1) != 0;
        }
        bool fresh_ready = false;
        for (int t = 0; t < kWarpSize; ++t) {
            const ThreadState &th = w.th[std::size_t(t)];
            if (!th.stack.empty()) {
                v.any_stack_work = true;
                if (!th.pending) {
                    v.has_ready = true;
                    const StackEntry &top = peekWork(th);
                    if (top.entry_t < searchLimit(w, top.main))
                        fresh_ready = true;
                }
            } else if (!th.pending) {
                v.has_idle_lane = true;
            }
        }
        v.ready_all_stale = v.has_ready && !fresh_ready;
        if (cfg_.coop && !v.has_ready) {
            // LBU-only progress: a legal helper/main pair in some
            // subwarp (exactly the runLbu selection criteria).
            const int groups = kWarpSize / cfg_.subwarp_size;
            for (int g = 0; g < groups && !v.lbu_eligible; ++g) {
                bool helper = false, main = false;
                for (int t = g * cfg_.subwarp_size;
                     t < (g + 1) * cfg_.subwarp_size; ++t) {
                    const ThreadState &th = w.th[std::size_t(t)];
                    if (th.stack.empty() &&
                        (!cfg_.helper_requires_idle || !th.pending))
                        helper = true;
                    if (th.stack.size() >= 2 ||
                        (th.pending && !th.stack.empty()))
                        main = true;
                }
                v.lbu_eligible = helper && main;
            }
        }
        if (w.outstanding > 0 && best[slot] != kNever)
            v.wait_level = prof::MemLevel(level[slot]);

        const prof::Phase phase =
            prof::phaseOf(w.prof_consumed, v.any_stack_work);
        prof_->add(prof::classify(v), phase, weight);

        // Exact thread-status cycle totals (the Fig. 4 axes).
        for (int t = 0; t < kWarpSize; ++t) {
            const ThreadState &th = w.th[std::size_t(t)];
            if (threadBusy(th))
                prof_->threads.busy += weight;
            else if (th.active)
                prof_->threads.waiting += weight;
            else
                prof_->threads.inactive += weight;
        }
    }
    if (end_of_tick)
        prof_accounted_ = now;

    // Conservation: the pass must attribute exactly one bucket
    // increment per resident warp per covered cycle.
    COOPRT_AUDIT(check_label_, "prof.bucket_conservation", now,
                 prof_->residentBucketSum() - audit_before ==
                     audit_expected,
                 "attributed " +
                     std::to_string(prof_->residentBucketSum() -
                                    audit_before) +
                     " cycles but " +
                     std::to_string(audit_expected) +
                     " warp-resident cycles elapsed");
}

std::uint64_t
RtUnit::nextEventCycle(std::uint64_t now) const
{
    if (resident_ == 0)
        return kNever;

    for (const WarpEntry &w : warps_) {
        if (!w.valid)
            continue;
        bool has_helper = false, has_main = false;
        for (int t = 0; t < kWarpSize; ++t) {
            const ThreadState &th = w.th[std::size_t(t)];
            if (!th.pending && !th.stack.empty())
                return now; // issueable (or stale-droppable) work
            if (cfg_.coop) {
                if (th.stack.empty() &&
                    (!cfg_.helper_requires_idle || !th.pending))
                    has_helper = true;
                if (th.stack.size() >= 2 ||
                    (th.pending && !th.stack.empty()))
                    has_main = true;
            }
        }
        if (cfg_.coop && has_helper && has_main)
            return now; // LBU can move a node
    }

    if (!responses_.empty()) {
        const std::uint64_t r = responses_.front().ready;
        return r > now ? r : now;
    }

    // Resident warps with no work and no responses should have been
    // retired already; let the next tick clean them up.
    return now;
}

ThreadStatusCounts
RtUnit::threadStatus() const
{
    ThreadStatusCounts c;
    for (const WarpEntry &w : warps_) {
        if (!w.valid)
            continue;
        for (int t = 0; t < kWarpSize; ++t) {
            const ThreadState &th = w.th[std::size_t(t)];
            if (threadBusy(th))
                c.busy++;
            else if (th.active)
                c.waiting++;
            else
                c.inactive++;
        }
    }
    return c;
}

void
RtUnit::sharePredictor(const RtUnit &other)
{
    if (cfg_.intersection_predictor && other.predictor_)
        predictor_ = other.predictor_;
}

#if COOPRT_CHECK_ENABLED
void
RtUnit::auditInvariants(std::uint64_t now) const
{
    // Fig. 7 step 1: one coalesced node fetch per RT unit per cycle.
    COOPRT_AUDIT(check_label_, "rtunit.single_issue_per_cycle", now,
                 audit_issues_this_tick_ <= 1,
                 std::to_string(audit_issues_this_tick_) +
                     " fetches issued in one cycle");

    // Warp-buffer residency ledger and trace_ray conservation.
    int valid = 0;
    for (const WarpEntry &w : warps_)
        valid += w.valid ? 1 : 0;
    COOPRT_AUDIT(check_label_, "rtunit.resident_count", now,
                 valid == resident_,
                 "resident_=" + std::to_string(resident_) + " but " +
                     std::to_string(valid) + " valid entries");
    COOPRT_AUDIT(check_label_, "rtunit.warp_conservation", now,
                 audit_submitted_ ==
                     stats_.retired_warps + std::uint64_t(valid),
                 "submitted=" + std::to_string(audit_submitted_) +
                     " retired=" +
                     std::to_string(stats_.retired_warps) +
                     " resident=" + std::to_string(valid));

    // Response FIFO vs warp bookkeeping: every in-flight response
    // targets a live slot, per-slot outstanding counts match, and the
    // pending threads are exactly the consumers awaiting data.
    std::vector<int> fifo(warps_.size(), 0);
    std::vector<std::uint32_t> consumers(warps_.size(), 0);
    for (const Response &r : responses_) {
        const bool slot_ok = r.slot >= 0 &&
                             r.slot < int(warps_.size()) &&
                             warps_[std::size_t(r.slot)].valid;
        COOPRT_AUDIT(check_label_, "rtunit.response_slot_valid", now,
                     slot_ok,
                     "response (ready " + std::to_string(r.ready) +
                         ") targets dead slot " +
                         std::to_string(r.slot));
        if (!slot_ok)
            continue;
        fifo[std::size_t(r.slot)]++;
        consumers[std::size_t(r.slot)] |= r.consumers;
    }

    for (std::size_t i = 0; i < warps_.size(); ++i) {
        const WarpEntry &w = warps_[i];
        if (!w.valid) {
            COOPRT_AUDIT(check_label_,
                         "rtunit.outstanding_matches_fifo", now,
                         fifo[i] == 0,
                         "slot " + std::to_string(i) +
                             " invalid but has " +
                             std::to_string(fifo[i]) + " responses");
            continue;
        }
        COOPRT_AUDIT(check_label_, "rtunit.outstanding_matches_fifo",
                     now, w.outstanding == fifo[i],
                     "slot " + std::to_string(i) + " outstanding=" +
                         std::to_string(w.outstanding) + " but " +
                         std::to_string(fifo[i]) +
                         " responses in flight");

        std::uint32_t pending_mask = 0;
        for (int t = 0; t < kWarpSize; ++t)
            if (w.th[std::size_t(t)].pending)
                pending_mask |= (1u << t);
        COOPRT_AUDIT(check_label_, "rtunit.pending_matches_responses",
                     now, pending_mask == consumers[i],
                     "slot " + std::to_string(i) + " pending mask " +
                         std::to_string(pending_mask) +
                         " != consumer union " +
                         std::to_string(consumers[i]));

        for (int t = 0; t < kWarpSize; ++t) {
            const ThreadState &th = w.th[std::size_t(t)];

            COOPRT_AUDIT(check_label_, "rtunit.stack_depth_bound",
                         now, th.stack.size() <= check_stack_bound_,
                         "slot " + std::to_string(i) + " thread " +
                             std::to_string(t) + " stack depth " +
                             std::to_string(th.stack.size()) +
                             " > bound " +
                             std::to_string(check_stack_bound_));

            for (const StackEntry &e : th.stack) {
                const int m = e.main;
                // Helpers may only hold work of an active ray owned
                // inside their own subwarp (their own tid when the
                // LBU is off).
                const bool scope_ok =
                    m >= 0 && m < kWarpSize &&
                    w.th[std::size_t(m)].active &&
                    (cfg_.coop ? m / cfg_.subwarp_size ==
                                     t / cfg_.subwarp_size
                               : m == t);
                COOPRT_AUDIT(check_label_, "rtunit.stack_owner_scope",
                             now, scope_ok,
                             "slot " + std::to_string(i) +
                                 " thread " + std::to_string(t) +
                                 " holds entry owned by " +
                                 std::to_string(m));
                const bool ref_ok =
                    e.ref.isLeaf()
                        ? e.ref.firstSlot() + e.ref.primCount() <=
                              bvh_.primCount()
                        : e.ref.nodeIndex() < bvh_.nodeCount();
                COOPRT_AUDIT(check_label_, "rtunit.stack_ref_valid",
                             now, ref_ok,
                             "slot " + std::to_string(i) +
                                 " thread " + std::to_string(t) +
                                 " ref raw " +
                                 std::to_string(e.ref.raw()));
            }

            // Hit-state consistency: the min_thit register and the
            // hit record move together (Section 5.3's invariant that
            // helpers update the main thread's registers).
            const float mt = w.min_thit[std::size_t(t)];
            const geom::HitRecord &rec = w.hit[std::size_t(t)];
            const bool hit_ok =
                th.active ? (rec.hit() == (mt != geom::kNoHit) &&
                             (!rec.hit() || mt <= rec.thit))
                          : (!rec.hit() && mt == geom::kNoHit);
            COOPRT_AUDIT(check_label_, "rtunit.hit_state_consistent",
                         now, hit_ok,
                         "slot " + std::to_string(i) + " thread " +
                             std::to_string(t) + " min_thit=" +
                             std::to_string(mt) + " rec.thit=" +
                             std::to_string(rec.thit));
        }
    }
}
#endif // COOPRT_CHECK_ENABLED

void
RtUnit::armTimeline(stats::TimelineRecorder *recorder,
                    int skip_submissions)
{
    timeline_ = recorder;
    timeline_armed_ = true;
    timeline_slot_ = -1;
    timeline_skip_ = skip_submissions;
}

} // namespace cooprt::rtunit

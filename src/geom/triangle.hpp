/**
 * @file
 * Triangle primitive and the Möller–Trumbore ray/triangle intersection
 * test performed by the RT unit's math units (paper Fig. 7,
 * "Ray-Tri Intersection").
 */

#ifndef COOPRT_GEOM_TRIANGLE_HPP
#define COOPRT_GEOM_TRIANGLE_HPP

#include "geom/ray.hpp"
#include "geom/aabb.hpp"
#include "geom/vec3.hpp"

namespace cooprt::geom {

/**
 * A triangle primitive, stored as three vertex positions.
 *
 * This mirrors the paper's leaf-node contents: "Leaf nodes are
 * primitives such as triangles or quads, and they contain the vertex
 * coordinates of the primitive."
 */
struct Triangle
{
    Vec3 v0, v1, v2;

    Triangle() = default;
    Triangle(const Vec3 &a, const Vec3 &b, const Vec3 &c)
        : v0(a), v1(b), v2(c)
    {}

    /** Bounding box of the triangle. */
    AABB
    bounds() const
    {
        AABB b;
        b.grow(v0);
        b.grow(v1);
        b.grow(v2);
        return b;
    }

    /** Centroid (average of the three vertices). */
    Vec3 centroid() const { return (v0 + v1 + v2) / 3.0f; }

    /** Geometric (unnormalized) normal via the cross product. */
    Vec3 geometricNormal() const { return cross(v1 - v0, v2 - v0); }

    /** Twice the triangle area (length of the geometric normal). */
    float area2() const { return geometricNormal().length(); }

    /**
     * Möller–Trumbore intersection test.
     *
     * Double-sided: hits are reported regardless of winding, as RT
     * units do by default (culling is an optional pipeline flag).
     *
     * @param ray     The ray to test.
     * @param t_limit Current closest-hit distance; farther hits are
     *                rejected (paper Algorithm 1, line 8 analogue).
     * @return Hit distance within (ray.tmin, min(t_limit, ray.tmax)),
     *         or kNoHit.
     */
    float
    intersect(const Ray &ray, float t_limit) const
    {
        const Vec3 e1 = v1 - v0;
        const Vec3 e2 = v2 - v0;
        const Vec3 p = cross(ray.dir, e2);
        const float det = dot(e1, p);
        // Near-zero determinant: ray parallel to the triangle plane.
        if (det > -1e-12f && det < 1e-12f)
            return kNoHit;
        const float inv_det = 1.0f / det;
        const Vec3 t = ray.orig - v0;
        const float u = dot(t, p) * inv_det;
        if (u < 0.0f || u > 1.0f)
            return kNoHit;
        const Vec3 q = cross(t, e1);
        const float v = dot(ray.dir, q) * inv_det;
        if (v < 0.0f || u + v > 1.0f)
            return kNoHit;
        const float thit = dot(e2, q) * inv_det;
        const float limit = t_limit < ray.tmax ? t_limit : ray.tmax;
        if (thit <= ray.tmin || thit >= limit)
            return kNoHit;
        return thit;
    }

    /**
     * Unit, front-facing normal for shading: flipped to oppose the
     * incoming direction @p incoming.
     */
    Vec3
    shadingNormal(const Vec3 &incoming) const
    {
        Vec3 n = normalize(geometricNormal());
        if (dot(n, incoming) > 0.0f)
            n = -n;
        return n;
    }
};

} // namespace cooprt::geom

#endif // COOPRT_GEOM_TRIANGLE_HPP

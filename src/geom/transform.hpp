/**
 * @file
 * Rigid transforms (rotation + translation) for instanced geometry.
 *
 * Vulkan acceleration structures are two-level: a top-level structure
 * over *instances*, each referencing a bottom-level structure through
 * a transform (the "Coordinate Transform" block in the paper's RT
 * unit, Figs. 3 and 7). Rigid transforms preserve distances, so hit
 * t values measured in object space are valid in world space — which
 * is what lets instancing compose with min_thit-based traversal
 * without rescaling.
 */

#ifndef COOPRT_GEOM_TRANSFORM_HPP
#define COOPRT_GEOM_TRANSFORM_HPP

#include <cmath>

#include "geom/aabb.hpp"
#include "geom/ray.hpp"
#include "geom/vec3.hpp"

namespace cooprt::geom {

/**
 * A rigid transform: an orthonormal rotation followed by a
 * translation. Stored as three row vectors plus the translation.
 */
class RigidTransform
{
  public:
    /** Identity transform. */
    RigidTransform()
        : rx_{1, 0, 0}, ry_{0, 1, 0}, rz_{0, 0, 1}, t_{0, 0, 0}
    {}

    /** Rotation about the Y axis by @p radians, then translation. */
    static RigidTransform
    rotateYTranslate(float radians, const Vec3 &translation)
    {
        RigidTransform m;
        const float c = std::cos(radians), s = std::sin(radians);
        m.rx_ = {c, 0, s};
        m.ry_ = {0, 1, 0};
        m.rz_ = {-s, 0, c};
        m.t_ = translation;
        return m;
    }

    /** Pure translation. */
    static RigidTransform
    translate(const Vec3 &translation)
    {
        RigidTransform m;
        m.t_ = translation;
        return m;
    }

    /** Transform a point (rotation + translation). */
    Vec3
    point(const Vec3 &p) const
    {
        return Vec3{dot(rx_, p), dot(ry_, p), dot(rz_, p)} + t_;
    }

    /** Transform a direction (rotation only). */
    Vec3
    direction(const Vec3 &d) const
    {
        return {dot(rx_, d), dot(ry_, d), dot(rz_, d)};
    }

    /** The inverse rigid transform (transpose + back-translation). */
    RigidTransform
    inverse() const
    {
        RigidTransform inv;
        // Transpose of an orthonormal matrix is its inverse.
        inv.rx_ = {rx_.x, ry_.x, rz_.x};
        inv.ry_ = {rx_.y, ry_.y, rz_.y};
        inv.rz_ = {rx_.z, ry_.z, rz_.z};
        inv.t_ = -inv.direction(t_);
        return inv;
    }

    /**
     * Transform a ray. Rigid transforms preserve parameter t: a hit
     * at distance t on the transformed ray is at distance t on the
     * original.
     */
    Ray
    ray(const Ray &r) const
    {
        return Ray(point(r.orig), direction(r.dir), r.tmin, r.tmax);
    }

    /** Conservative transformed box: box of the 8 moved corners. */
    AABB
    box(const AABB &b) const
    {
        AABB out;
        for (int i = 0; i < 8; ++i) {
            const Vec3 corner{i & 1 ? b.hi.x : b.lo.x,
                              i & 2 ? b.hi.y : b.lo.y,
                              i & 4 ? b.hi.z : b.lo.z};
            out.grow(point(corner));
        }
        return out;
    }

  private:
    Vec3 rx_, ry_, rz_; ///< rotation rows
    Vec3 t_;            ///< translation
};

} // namespace cooprt::geom

#endif // COOPRT_GEOM_TRANSFORM_HPP

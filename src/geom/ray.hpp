/**
 * @file
 * Ray representation used by both the functional tracer and the RT-unit
 * timing model.
 */

#ifndef COOPRT_GEOM_RAY_HPP
#define COOPRT_GEOM_RAY_HPP

#include <limits>

#include "geom/vec3.hpp"

namespace cooprt::geom {

/** Sentinel hit distance meaning "no hit found yet". */
constexpr float kNoHit = std::numeric_limits<float>::infinity();

/**
 * A ray with origin, direction and a valid parametric interval.
 *
 * The reciprocal direction is precomputed once per ray, as done by real
 * RT units, so that each slab test costs multiplies instead of divides.
 * Zero direction components yield +/-inf reciprocals, which the slab
 * test handles correctly (IEEE semantics).
 */
struct Ray
{
    Vec3 orig;
    Vec3 dir;
    /** Component-wise reciprocal of dir, cached for slab tests. */
    Vec3 inv_dir;
    /** Minimum valid hit distance (used to avoid self-intersection). */
    float tmin = 1e-4f;
    /** Maximum valid hit distance (shadow/AO rays use a finite value). */
    float tmax = kNoHit;

    Ray() = default;

    Ray(const Vec3 &o, const Vec3 &d, float t_min = 1e-4f,
        float t_max = kNoHit)
        : orig(o), dir(d), tmin(t_min), tmax(t_max)
    {
        // Nudge exactly-zero components so the reciprocal stays finite
        // and the slab test never produces 0 * inf = NaN.
        auto safe = [](float c) { return c == 0.0f ? 1e-30f : c; };
        inv_dir = {1.0f / safe(d.x), 1.0f / safe(d.y), 1.0f / safe(d.z)};
    }

    /** Point along the ray at parameter @p t. */
    Vec3 at(float t) const { return orig + dir * t; }

    /**
     * True for a zero-direction *query* ray (k-NN / containment
     * workloads): the stored direction is kept exactly as given, so
     * all-zero components identify a point query unambiguously. The
     * slab test switches to a point-to-box distance for these rays
     * instead of relying on the 1e-30 reciprocal nudge.
     */
    bool
    degenerate() const
    {
        return dir.x == 0.0f && dir.y == 0.0f && dir.z == 0.0f;
    }
};

/**
 * Result of a closest-hit query: hit distance plus enough information
 * for the shading stage (primitive id, geometric normal).
 */
struct HitRecord
{
    /** Hit distance, or kNoHit when the ray missed. */
    float thit = kNoHit;
    /** Index of the hit primitive within the scene, or UINT32_MAX. */
    std::uint32_t prim_id = 0xffffffffu;
    /** Geometric normal at the hit point (unit length, front-facing). */
    Vec3 normal;

    bool hit() const { return thit != kNoHit; }
};

} // namespace cooprt::geom

#endif // COOPRT_GEOM_RAY_HPP

/**
 * @file
 * Axis-aligned bounding box and the ray/box slab test, the fundamental
 * operation of BVH traversal (paper Section 2.1).
 */

#ifndef COOPRT_GEOM_AABB_HPP
#define COOPRT_GEOM_AABB_HPP

#include <limits>

#include "geom/ray.hpp"
#include "geom/vec3.hpp"

namespace cooprt::geom {

/**
 * An axis-aligned bounding box.
 *
 * Default-constructed boxes are *empty* (lo = +inf, hi = -inf), so that
 * growing an empty box by a point yields the degenerate box at that
 * point and growing by another box yields that box.
 */
struct AABB
{
    Vec3 lo{std::numeric_limits<float>::infinity(),
            std::numeric_limits<float>::infinity(),
            std::numeric_limits<float>::infinity()};
    Vec3 hi{-std::numeric_limits<float>::infinity(),
            -std::numeric_limits<float>::infinity(),
            -std::numeric_limits<float>::infinity()};

    AABB() = default;
    AABB(const Vec3 &l, const Vec3 &h) : lo(l), hi(h) {}

    /** True when the box contains no points (never grown). */
    bool empty() const { return lo.x > hi.x; }

    /** Expand to include point @p p. */
    void grow(const Vec3 &p) { lo = min(lo, p); hi = max(hi, p); }

    /** Expand to include box @p b. */
    void grow(const AABB &b) { lo = min(lo, b.lo); hi = max(hi, b.hi); }

    /** Box diagonal (hi - lo); zero vector for degenerate boxes. */
    Vec3 extent() const { return hi - lo; }

    /** Center point of the box. */
    Vec3 centroid() const { return (lo + hi) * 0.5f; }

    /**
     * Surface area of the box, the quantity minimized by the SAH
     * builder. Returns 0 for empty boxes.
     */
    float
    surfaceArea() const
    {
        if (empty())
            return 0.0f;
        const Vec3 e = extent();
        return 2.0f * (e.x * e.y + e.y * e.z + e.z * e.x);
    }

    /** True when @p p lies inside or on the boundary of the box. */
    bool
    contains(const Vec3 &p) const
    {
        return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
               p.z >= lo.z && p.z <= hi.z;
    }

    /** True when @p b is entirely inside this box (inclusive). */
    bool
    contains(const AABB &b) const
    {
        return contains(b.lo) && contains(b.hi);
    }

    /**
     * Slab test: intersect @p ray against this box.
     *
     * @param ray     Ray with precomputed reciprocal direction.
     * @param t_limit Current search limit (typically min(min_thit,
     *                ray.tmax)); entry distances beyond it are misses.
     * @return The entry distance (clamped below by ray.tmin; a ray
     *         starting inside the box returns ray.tmin), or kNoHit.
     *
     * Zero-direction *query* rays (k-NN / containment workloads) take
     * a dedicated branch: their "entry distance" is the Euclidean
     * distance from the origin to the closest point of the box, so
     * closest-hit traversal orders nodes by proximity to the query
     * point (the RTNN mapping) instead of depending on the 1e-30
     * reciprocal nudge producing huge-but-finite slab distances.
     */
    float
    intersect(const Ray &ray, float t_limit) const
    {
        if (ray.degenerate()) {
            const Vec3 closest = min(max(ray.orig, lo), hi);
            const float d = (ray.orig - closest).length();
            const float dentry = d > ray.tmin ? d : ray.tmin;
            if (dentry > t_limit)
                return kNoHit;
            return dentry;
        }

        float t0 = (lo.x - ray.orig.x) * ray.inv_dir.x;
        float t1 = (hi.x - ray.orig.x) * ray.inv_dir.x;
        float tn = t0 < t1 ? t0 : t1;
        float tf = t0 < t1 ? t1 : t0;

        t0 = (lo.y - ray.orig.y) * ray.inv_dir.y;
        t1 = (hi.y - ray.orig.y) * ray.inv_dir.y;
        tn = t0 < t1 ? (t0 > tn ? t0 : tn) : (t1 > tn ? t1 : tn);
        tf = t0 < t1 ? (t1 < tf ? t1 : tf) : (t0 < tf ? t0 : tf);

        t0 = (lo.z - ray.orig.z) * ray.inv_dir.z;
        t1 = (hi.z - ray.orig.z) * ray.inv_dir.z;
        tn = t0 < t1 ? (t0 > tn ? t0 : tn) : (t1 > tn ? t1 : tn);
        tf = t0 < t1 ? (t1 < tf ? t1 : tf) : (t0 < tf ? t0 : tf);

        const float entry = tn > ray.tmin ? tn : ray.tmin;
        if (entry > tf || entry > t_limit)
            return kNoHit;
        return entry;
    }
};

} // namespace cooprt::geom

#endif // COOPRT_GEOM_AABB_HPP

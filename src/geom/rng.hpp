/**
 * @file
 * Deterministic random number generation (PCG32) and sampling helpers.
 *
 * Everything in the repository that needs randomness (scene
 * generation, path-tracing scatter directions, property tests) uses
 * this generator so that runs are bit-reproducible across machines.
 */

#ifndef COOPRT_GEOM_RNG_HPP
#define COOPRT_GEOM_RNG_HPP

#include <cstdint>

#include "geom/vec3.hpp"

namespace cooprt::geom {

/**
 * PCG32 pseudo-random generator (O'Neill, pcg-random.org).
 *
 * Small state, excellent statistical quality, and a stream parameter
 * so per-pixel generators are decorrelated.
 */
class Pcg32
{
  public:
    /** Construct with a seed and an optional stream selector. */
    explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                   std::uint64_t stream = 0xda3e39cb94b95bdbULL)
    {
        state_ = 0;
        inc_ = (stream << 1) | 1u;
        nextU32();
        state_ += seed;
        nextU32();
    }

    /** Next uniformly distributed 32-bit value. */
    std::uint32_t
    nextU32()
    {
        std::uint64_t old = state_;
        state_ = old * 6364136223846793005ULL + inc_;
        std::uint32_t xorshifted =
            static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
        std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((-rot) & 31));
    }

    /** Uniform integer in [0, n). @p n must be > 0. */
    std::uint32_t
    nextBelow(std::uint32_t n)
    {
        // Lemire's multiply-shift; slight modulo bias is irrelevant
        // for simulation workloads but the multiply keeps it tiny.
        return static_cast<std::uint32_t>(
            (std::uint64_t(nextU32()) * n) >> 32);
    }

    /** Uniform float in [0, 1). */
    float
    nextFloat()
    {
        return float(nextU32() >> 8) * (1.0f / 16777216.0f);
    }

    /** Uniform float in [lo, hi). */
    float
    nextRange(float lo, float hi)
    {
        return lo + (hi - lo) * nextFloat();
    }

    /** Uniform point inside an axis-aligned box [lo, hi). */
    Vec3
    nextInBox(const Vec3 &lo, const Vec3 &hi)
    {
        return {nextRange(lo.x, hi.x), nextRange(lo.y, hi.y),
                nextRange(lo.z, hi.z)};
    }

    /** Uniform direction on the unit sphere. */
    Vec3
    nextUnitVector()
    {
        // Marsaglia rejection-free: z uniform, azimuth uniform.
        const float z = nextRange(-1.0f, 1.0f);
        const float phi = nextRange(0.0f, 6.28318530718f);
        const float r = std::sqrt(1.0f - z * z > 0.0f ? 1.0f - z * z
                                                      : 0.0f);
        return {r * std::cos(phi), r * std::sin(phi), z};
    }

    /**
     * Cosine-weighted direction on the hemisphere around unit normal
     * @p n — the Lambertian scatter distribution used by the path
     * tracer's bounce loop.
     */
    Vec3
    nextCosineHemisphere(const Vec3 &n)
    {
        Vec3 d = n + nextUnitVector();
        // Degenerate when the sphere sample is ~antipodal to n.
        if (d.lengthSq() < 1e-12f)
            return n;
        return normalize(d);
    }

  private:
    std::uint64_t state_;
    std::uint64_t inc_;
};

/**
 * Stateless 64-bit mix (splitmix64 finalizer); used to derive
 * decorrelated seeds, e.g. one RNG stream per pixel.
 */
inline std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace cooprt::geom

#endif // COOPRT_GEOM_RNG_HPP

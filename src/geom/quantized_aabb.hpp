/**
 * @file
 * Quantized child bounding boxes for compressed wide BVH nodes.
 *
 * Real RT-unit BVH layouts (NVIDIA, AMD, and the MESA layout used by
 * Vulkan-sim) compress the child AABBs of a wide node onto a small
 * fixed-point grid anchored at the parent box, so that a 6-wide node
 * fits in one or two cache lines. Quantization must be *conservative*:
 * the decoded box always contains the original box, so traversal can
 * only visit extra nodes, never miss a hit. That invariant is what the
 * property tests in tests/geom check.
 */

#ifndef COOPRT_GEOM_QUANTIZED_AABB_HPP
#define COOPRT_GEOM_QUANTIZED_AABB_HPP

#include <cmath>
#include <cstdint>

#include "geom/aabb.hpp"
#include "geom/vec3.hpp"

namespace cooprt::geom {

/**
 * Per-node quantization frame: an origin and a power-of-two scale per
 * axis. Child boxes are stored as 8-bit grid coordinates relative to
 * this frame.
 */
struct QuantFrame
{
    /** Grid origin (the parent box lower corner). */
    Vec3 origin;
    /** Per-axis grid cell size (power of two, exactly representable). */
    Vec3 scale{1.0f, 1.0f, 1.0f};

    /**
     * Build a frame that can represent any sub-box of @p parent with
     * 8-bit coordinates (grid of 256 cells per axis).
     */
    static QuantFrame
    forParent(const AABB &parent)
    {
        QuantFrame f;
        f.origin = parent.lo;
        const Vec3 e = parent.extent();
        for (int a = 0; a < 3; ++a) {
            // Smallest power of two >= extent/255 so that coordinate
            // 255 reaches past the parent's upper corner.
            float cell = e[a] > 0.0f ? e[a] / 255.0f : 1e-6f;
            int exp = 0;
            float mant = std::frexp(cell, &exp);
            // frexp: cell = mant * 2^exp, mant in [0.5, 1). The
            // smallest power of two >= cell is 2^exp, except when cell
            // is itself a power of two (mant == 0.5): then 2^(exp-1).
            f.scale.at(a) = std::ldexp(1.0f, mant == 0.5f ? exp - 1 : exp);
        }
        return f;
    }

    /** Grid coordinate -> world position along axis @p a. */
    float decode(int a, std::uint8_t q) const
    { return origin[a] + scale[a] * float(q); }
};

/** A child AABB quantized to 8 bits per bound per axis (6 bytes). */
struct QuantizedAabb
{
    std::uint8_t qlo[3] = {0, 0, 0};
    std::uint8_t qhi[3] = {0, 0, 0};

    /**
     * Conservatively quantize @p box within frame @p f: lower bounds
     * are floored, upper bounds are ceiled, so decode() contains box.
     */
    static QuantizedAabb
    encode(const AABB &box, const QuantFrame &f)
    {
        QuantizedAabb q;
        for (int a = 0; a < 3; ++a) {
            float lo_g = (box.lo[a] - f.origin[a]) / f.scale[a];
            float hi_g = (box.hi[a] - f.origin[a]) / f.scale[a];
            float lo_q = std::floor(lo_g);
            float hi_q = std::ceil(hi_g);
            if (lo_q < 0.0f)
                lo_q = 0.0f;
            if (hi_q > 255.0f)
                hi_q = 255.0f;
            q.qlo[a] = static_cast<std::uint8_t>(lo_q);
            q.qhi[a] = static_cast<std::uint8_t>(hi_q);
        }
        return q;
    }

    /** Decode back to a (conservative) world-space box. */
    AABB
    decode(const QuantFrame &f) const
    {
        AABB b;
        for (int a = 0; a < 3; ++a) {
            b.lo.at(a) = f.decode(a, qlo[a]);
            b.hi.at(a) = f.decode(a, qhi[a]);
        }
        return b;
    }
};

} // namespace cooprt::geom

#endif // COOPRT_GEOM_QUANTIZED_AABB_HPP

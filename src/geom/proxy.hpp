/**
 * @file
 * Proxy primitives and leaf tests for non-rendering query workloads
 * (`cooprt::query`): k-nearest / fixed-radius neighbor search over
 * point clouds (RTNN) and point-containment queries over AMR cell
 * hierarchies (Zellmann et al.).
 *
 * Both workloads reuse the triangle mesh + BVH pipeline unchanged by
 * encoding their primitives as *degenerate triangles* whose bounding
 * boxes carry the real geometry:
 *
 *  - a data point p becomes Triangle{p, p, p} — its AABB is the point
 *    itself, and the Moller-Trumbore determinant of the degenerate
 *    triangle is 0, so it can never register as a rendering hit;
 *  - an AMR leaf cell [lo, hi] becomes Triangle{lo, hi, centroid} —
 *    its AABB is exactly the cell bounds.
 *
 * A query is a zero-direction ray (see Ray::degenerate()): the slab
 * test returns the point-to-box distance, so the RT unit's closest-hit
 * machinery (min_thit culling, stale-pop elimination, LBU work
 * stealing) performs exact distance-ordered search with no changes to
 * the BVH builder, caches, or timing model. The leaf test dispatches
 * on QueryKind instead of running the triangle intersector.
 */

#ifndef COOPRT_GEOM_PROXY_HPP
#define COOPRT_GEOM_PROXY_HPP

#include <cstdint>

#include "geom/aabb.hpp"
#include "geom/ray.hpp"
#include "geom/triangle.hpp"
#include "geom/vec3.hpp"

namespace cooprt::geom {

/**
 * Leaf-test dispatch for a traced warp. `None` is the rendering
 * default (Moller-Trumbore); the query kinds interpret the proxy
 * encodings above.
 */
enum class QueryKind : std::uint8_t
{
    None = 0,
    /** Distance to the proxy point (v0); nearest-first refinement. */
    NearestPoint = 1,
    /** Containment in the proxy cell [v0, v1]; finest cell wins. */
    CellContain = 2,
};

/** Encode data point @p p as a degenerate proxy triangle. */
inline Triangle
pointProxy(const Vec3 &p)
{
    return {p, p, p};
}

/** Encode AMR cell @p cell as a proxy triangle (AABB == cell). */
inline Triangle
cellProxy(const AABB &cell)
{
    return {cell.lo, cell.hi, cell.centroid()};
}

/**
 * Query leaf test, the QueryKind != None counterpart of
 * Triangle::intersect. Returns the query "hit distance" — a value the
 * closest-hit loop minimizes — or kNoHit:
 *
 *  - NearestPoint: the Euclidean distance d from the query origin to
 *    the data point, accepted iff ray.tmin < d < min(t_limit,
 *    ray.tmax). Strict rejection at tmin makes shrinking-sphere k-NN
 *    rounds exact: round j sets tmin to round j-1's distance, and the
 *    previous neighbor recomputes the *identical* float expression,
 *    so it is excluded deterministically with no exclusion lists.
 *  - CellContain: accepted iff the query origin lies inside the cell
 *    [v0, v1] (inclusive); the returned "distance" is the cell width,
 *    so overlapping coarse/fine candidates resolve to the finest cell
 *    through the ordinary min_thit ordering.
 */
inline float
queryLeafTest(QueryKind kind, const Triangle &tri, const Ray &ray,
              float t_limit)
{
    const float limit = t_limit < ray.tmax ? t_limit : ray.tmax;
    if (kind == QueryKind::NearestPoint) {
        const float d = (tri.v0 - ray.orig).length();
        if (d <= ray.tmin || d >= limit)
            return kNoHit;
        return d;
    }
    // CellContain: tri.v0/tri.v1 are the cell's lo/hi corners.
    const Vec3 &p = ray.orig;
    if (p.x < tri.v0.x || p.x > tri.v1.x || p.y < tri.v0.y ||
        p.y > tri.v1.y || p.z < tri.v0.z || p.z > tri.v1.z)
        return kNoHit;
    const float width = tri.v1.x - tri.v0.x;
    if (width <= ray.tmin || width >= limit)
        return kNoHit;
    return width;
}

} // namespace cooprt::geom

#endif // COOPRT_GEOM_PROXY_HPP

/**
 * @file
 * 3-component float vector used throughout the geometry substrate.
 *
 * The simulator models rays, bounding boxes and triangles in single
 * precision, matching the precision used by GPU RT units and by
 * Vulkan-sim's functional model.
 */

#ifndef COOPRT_GEOM_VEC3_HPP
#define COOPRT_GEOM_VEC3_HPP

#include <cmath>
#include <cstdint>
#include <ostream>

namespace cooprt::geom {

/**
 * A 3-component single-precision vector.
 *
 * Plain aggregate with value semantics; all operations are constexpr
 * where the underlying math allows it.
 */
struct Vec3
{
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;

    constexpr Vec3() = default;
    constexpr Vec3(float xv, float yv, float zv) : x(xv), y(yv), z(zv) {}
    /** Broadcast constructor: all three components set to @p s. */
    constexpr explicit Vec3(float s) : x(s), y(s), z(s) {}

    constexpr Vec3 operator+(const Vec3 &o) const
    { return {x + o.x, y + o.y, z + o.z}; }
    constexpr Vec3 operator-(const Vec3 &o) const
    { return {x - o.x, y - o.y, z - o.z}; }
    constexpr Vec3 operator*(const Vec3 &o) const
    { return {x * o.x, y * o.y, z * o.z}; }
    constexpr Vec3 operator/(const Vec3 &o) const
    { return {x / o.x, y / o.y, z / o.z}; }
    constexpr Vec3 operator*(float s) const { return {x * s, y * s, z * s}; }
    constexpr Vec3 operator/(float s) const { return {x / s, y / s, z / s}; }
    constexpr Vec3 operator-() const { return {-x, -y, -z}; }

    constexpr Vec3 &operator+=(const Vec3 &o)
    { x += o.x; y += o.y; z += o.z; return *this; }
    constexpr Vec3 &operator-=(const Vec3 &o)
    { x -= o.x; y -= o.y; z -= o.z; return *this; }
    constexpr Vec3 &operator*=(float s)
    { x *= s; y *= s; z *= s; return *this; }

    constexpr bool operator==(const Vec3 &o) const
    { return x == o.x && y == o.y && z == o.z; }

    /** Component access by index (0=x, 1=y, 2=z). */
    constexpr float operator[](int i) const
    { return i == 0 ? x : (i == 1 ? y : z); }

    /** Mutable component access by index (0=x, 1=y, 2=z). */
    constexpr float &at(int i) { return i == 0 ? x : (i == 1 ? y : z); }

    /** Squared Euclidean length. */
    constexpr float lengthSq() const { return x * x + y * y + z * z; }
    /** Euclidean length. */
    float length() const { return std::sqrt(lengthSq()); }

    /** Largest component value. */
    constexpr float maxComponent() const
    { return x > y ? (x > z ? x : z) : (y > z ? y : z); }
    /** Smallest component value. */
    constexpr float minComponent() const
    { return x < y ? (x < z ? x : z) : (y < z ? y : z); }
    /** Index of the largest component (0=x, 1=y, 2=z). */
    constexpr int maxAxis() const
    { return x > y ? (x > z ? 0 : 2) : (y > z ? 1 : 2); }
};

constexpr Vec3
operator*(float s, const Vec3 &v)
{
    return v * s;
}

/** Dot product. */
constexpr float
dot(const Vec3 &a, const Vec3 &b)
{
    return a.x * b.x + a.y * b.y + a.z * b.z;
}

/** Cross product. */
constexpr Vec3
cross(const Vec3 &a, const Vec3 &b)
{
    return {a.y * b.z - a.z * b.y,
            a.z * b.x - a.x * b.z,
            a.x * b.y - a.y * b.x};
}

/** Component-wise minimum. */
constexpr Vec3
min(const Vec3 &a, const Vec3 &b)
{
    return {a.x < b.x ? a.x : b.x,
            a.y < b.y ? a.y : b.y,
            a.z < b.z ? a.z : b.z};
}

/** Component-wise maximum. */
constexpr Vec3
max(const Vec3 &a, const Vec3 &b)
{
    return {a.x > b.x ? a.x : b.x,
            a.y > b.y ? a.y : b.y,
            a.z > b.z ? a.z : b.z};
}

/** Unit-length copy of @p v.  @p v must not be the zero vector. */
inline Vec3
normalize(const Vec3 &v)
{
    return v / v.length();
}

/** Linear interpolation between @p a and @p b with parameter @p t. */
constexpr Vec3
lerp(const Vec3 &a, const Vec3 &b, float t)
{
    return a * (1.0f - t) + b * t;
}

/** Reflect direction @p d about unit normal @p n. */
constexpr Vec3
reflect(const Vec3 &d, const Vec3 &n)
{
    return d - n * (2.0f * dot(d, n));
}

inline std::ostream &
operator<<(std::ostream &os, const Vec3 &v)
{
    return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
}

} // namespace cooprt::geom

#endif // COOPRT_GEOM_VEC3_HPP

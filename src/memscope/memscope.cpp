#include "memscope/memscope.hpp"

#include <algorithm>
#include <bit>
#include <iomanip>
#include <ostream>

#include "trace/json.hpp"

namespace cooprt::memscope {

namespace {

constexpr std::array<const char *, kNumLevels> kLevelNames = {
    "l1", "l2", "dram"};

constexpr std::array<const char *, kNumPhases> kPhaseNames = {
    "ramp", "traverse", "drain"};

/** Reuse-distance bucket of distance @p d: bit_width, clamped. */
int
bucketOf(std::uint64_t d)
{
    const int b = std::bit_width(d);
    return b >= kReuseBuckets ? kReuseBuckets - 1 : b;
}

void
writeLevels(std::ostream &os,
            const std::array<std::uint64_t, kNumLevels> &level)
{
    for (int l = 0; l < kNumLevels; ++l)
        os << ',' << trace::quoteJson(kLevelNames[std::size_t(l)])
           << ':' << level[std::size_t(l)];
}

void
writeReuse(std::ostream &os, std::uint64_t cold,
           std::uint64_t tracked,
           const std::array<std::uint64_t, kReuseBuckets> &hist)
{
    os << "{\"cold\":" << cold << ",\"tracked\":" << tracked
       << ",\"hist\":[";
    for (int b = 0; b < kReuseBuckets; ++b) {
        if (b)
            os << ',';
        os << hist[std::size_t(b)];
    }
    os << "]}";
}

} // namespace

void
UnitScope::record(std::uint32_t node_id, int depth, int level,
                  int lanes, int phase, std::uint32_t fetch_bytes)
{
    if (node_id >= nodes.size())
        nodes.resize(std::size_t(node_id) + 1);
    if (std::size_t(depth) >= depths.size())
        depths.resize(std::size_t(depth) + 1);

    NodeCounters &n = nodes[node_id];
    n.accesses++;
    n.bytes += fetch_bytes;
    n.lanes += std::uint64_t(lanes);
    n.level[std::size_t(level)]++;
    n.depth = std::uint16_t(depth);

    DepthCounters &d = depths[std::size_t(depth)];
    d.accesses++;
    d.bytes += fetch_bytes;
    d.lanes += std::uint64_t(lanes);
    d.level[std::size_t(level)]++;
    d.phase[std::size_t(phase)]++;

    accesses++;
    bytes += fetch_bytes;
}

void
UnitScope::reset()
{
    nodes.clear();
    depths.clear();
    accesses = 0;
    bytes = 0;
}

std::uint64_t
CacheScope::prefix(std::uint64_t p) const
{
    std::uint64_t s = 0;
    for (std::uint64_t i = p; i > 0; i -= i & (~i + 1))
        s += fen_[i - 1];
    return s;
}

void
CacheScope::add(std::uint64_t pos, std::int64_t delta)
{
    // Two's-complement addition makes negative deltas exact on the
    // unsigned prefix sums.
    for (std::uint64_t i = pos + 1; i <= fen_.size();
         i += i & (~i + 1))
        fen_[i - 1] += std::uint64_t(delta);
}

void
CacheScope::touch(std::uint64_t line, std::uint32_t set)
{
    accesses_++;
    if (set >= set_accesses_.size())
        set_accesses_.resize(std::size_t(set) + 1, 0);
    set_accesses_[set]++;

    const auto it = last_pos_.find(line);
    if (it == last_pos_.end()) {
        cold_++;
    } else {
        const std::uint64_t prev = it->second;
        // Stack distance: distinct lines touched since the previous
        // access to this line == present positions strictly after it.
        const std::uint64_t d = prefix(now_) - prefix(prev + 1);
        hist_[std::size_t(bucketOf(d))]++;
        present_[prev] = 0;
        add(prev, -1);
    }

    if (now_ >= fen_.size()) {
        // Grow by doubling and rebuild from the present flags —
        // amortized O(log n) per touch.
        std::size_t cap = fen_.empty() ? 1024 : fen_.size() * 2;
        while (cap <= now_)
            cap *= 2;
        fen_.assign(cap, 0);
        for (std::uint64_t p = 0; p < now_; ++p)
            if (present_[p])
                add(p, 1);
    }
    present_.push_back(1);
    add(now_, 1);
    last_pos_[line] = now_;
    now_++;
}

std::uint64_t
CacheScope::maxSetAccesses() const
{
    std::uint64_t best = 0;
    for (const std::uint64_t n : set_accesses_)
        best = std::max(best, n);
    return best;
}

std::size_t
CacheScope::setsTouched() const
{
    std::size_t n = 0;
    for (const std::uint64_t a : set_accesses_)
        n += a != 0;
    return n;
}

void
CacheScope::reset()
{
    last_pos_.clear();
    present_.clear();
    fen_.clear();
    now_ = 0;
    accesses_ = 0;
    cold_ = 0;
    hist_.fill(0);
    set_accesses_.clear();
}

void
DramScope::onAccess(std::uint64_t addr, std::uint32_t access_bytes,
                    std::uint32_t channel)
{
    if (channel >= last_row_.size())
        last_row_.resize(std::size_t(channel) + 1, -1);
    const std::int64_t row = std::int64_t(addr / row_bytes);
    if (last_row_[channel] == row)
        row_hits++;
    else
        row_misses++;
    last_row_[channel] = row;
    requests++;
    bytes += access_bytes;
}

void
DramScope::reset()
{
    requests = 0;
    bytes = 0;
    row_hits = 0;
    row_misses = 0;
    last_row_.clear();
}

Collector::~Collector()
{
    if (registry_ != nullptr)
        registry_->unregisterOwner(this);
}

UnitScope &
Collector::unit(int sm_id)
{
    while (int(units_.size()) <= sm_id)
        units_.push_back(std::make_unique<UnitScope>());
    return *units_[std::size_t(sm_id)];
}

CacheScope &
Collector::l1Scope(int sm_id)
{
    while (int(l1_scopes_.size()) <= sm_id)
        l1_scopes_.push_back(std::make_unique<CacheScope>());
    return *l1_scopes_[std::size_t(sm_id)];
}

void
Collector::reset()
{
    for (auto &u : units_)
        u->reset();
    for (auto &s : l1_scopes_)
        s->reset();
    l2_scope_.reset();
    traffic_.reset();
    dram_.reset();
}

NodeCounters
Collector::nodeTotals() const
{
    NodeCounters t;
    for (const auto &u : units_) {
        t.accesses += u->accesses;
        t.bytes += u->bytes;
        for (const NodeCounters &n : u->nodes) {
            t.lanes += n.lanes;
            for (int l = 0; l < kNumLevels; ++l)
                t.level[std::size_t(l)] += n.level[std::size_t(l)];
        }
    }
    return t;
}

std::vector<DepthCounters>
Collector::depthTotals() const
{
    std::vector<DepthCounters> t;
    for (const auto &u : units_) {
        if (u->depths.size() > t.size())
            t.resize(u->depths.size());
        for (std::size_t d = 0; d < u->depths.size(); ++d) {
            const DepthCounters &s = u->depths[d];
            DepthCounters &o = t[d];
            o.accesses += s.accesses;
            o.bytes += s.bytes;
            o.lanes += s.lanes;
            for (int l = 0; l < kNumLevels; ++l)
                o.level[std::size_t(l)] += s.level[std::size_t(l)];
            for (int p = 0; p < kNumPhases; ++p)
                o.phase[std::size_t(p)] += s.phase[std::size_t(p)];
        }
    }
    return t;
}

std::vector<HotNode>
Collector::hotNodes(std::size_t k) const
{
    // Merge the per-unit heatmaps into one id-indexed table.
    std::vector<NodeCounters> merged;
    for (const auto &u : units_) {
        if (u->nodes.size() > merged.size())
            merged.resize(u->nodes.size());
        for (std::size_t i = 0; i < u->nodes.size(); ++i) {
            const NodeCounters &n = u->nodes[i];
            if (n.accesses == 0)
                continue;
            NodeCounters &m = merged[i];
            m.accesses += n.accesses;
            m.bytes += n.bytes;
            m.lanes += n.lanes;
            for (int l = 0; l < kNumLevels; ++l)
                m.level[std::size_t(l)] += n.level[std::size_t(l)];
            m.depth = n.depth;
        }
    }
    std::vector<HotNode> hot;
    for (std::size_t i = 0; i < merged.size(); ++i)
        if (merged[i].accesses != 0)
            hot.push_back(HotNode{std::uint32_t(i),
                                  int(merged[i].depth), merged[i]});
    std::sort(hot.begin(), hot.end(),
              [](const HotNode &a, const HotNode &b) {
                  if (a.c.accesses != b.c.accesses)
                      return a.c.accesses > b.c.accesses;
                  return a.node < b.node;
              });
    if (hot.size() > k)
        hot.resize(k);
    return hot;
}

void
Collector::l1ReuseTotals(
    std::uint64_t &cold, std::uint64_t &tracked,
    std::array<std::uint64_t, kReuseBuckets> &hist) const
{
    cold = 0;
    tracked = 0;
    hist.fill(0);
    for (const auto &s : l1_scopes_) {
        cold += s->cold();
        tracked += s->accesses();
        for (int b = 0; b < kReuseBuckets; ++b)
            hist[std::size_t(b)] += s->hist()[std::size_t(b)];
    }
}

Summary
Collector::summary() const
{
    Summary s;
    s.enabled = true;
    const NodeCounters t = nodeTotals();
    s.node_accesses = t.accesses;
    s.node_bytes = t.bytes;
    s.node_lanes = t.lanes;
    s.node_level = t.level;
    const std::vector<DepthCounters> depths = depthTotals();
    for (std::size_t d = 0; d < depths.size(); ++d) {
        if (depths[d].accesses == 0)
            continue;
        Summary::DepthRow row;
        row.depth = int(d);
        row.accesses = depths[d].accesses;
        row.bytes = depths[d].bytes;
        row.lanes = depths[d].lanes;
        row.level = depths[d].level;
        s.depths.push_back(row);
    }
    s.traffic = traffic_;
    s.dram_row_hits = dram_.row_hits;
    s.dram_row_misses = dram_.row_misses;
    std::array<std::uint64_t, kReuseBuckets> hist;
    l1ReuseTotals(s.l1_reuse_cold, s.l1_reuse_tracked, hist);
    s.l2_reuse_cold = l2_scope_.cold();
    s.l2_reuse_tracked = l2_scope_.accesses();
    return s;
}

void
Collector::registerMetrics(cooprt::trace::Registry &registry)
{
    registry_ = &registry;
    for (std::size_t i = 0; i < units_.size(); ++i) {
        const UnitScope *u = units_[i].get();
        const std::string p =
            "memscope.sm" + std::to_string(i) + ".";
        registry.probe(p + "node_accesses",
                       [u] { return double(u->accesses); }, this);
        registry.probe(p + "node_bytes",
                       [u] { return double(u->bytes); }, this);
    }
    registry.probe("memscope.gpu.node_accesses",
                   [this] { return double(nodeTotals().accesses); },
                   this);
    registry.probe("memscope.gpu.node_bytes",
                   [this] { return double(nodeTotals().bytes); },
                   this);
    registry.probe("memscope.gpu.lanes",
                   [this] { return double(nodeTotals().lanes); },
                   this);
    for (int l = 0; l < kNumLevels; ++l)
        registry.probe(
            std::string("memscope.gpu.level_") +
                kLevelNames[std::size_t(l)],
            [this, l] {
                return double(nodeTotals().level[std::size_t(l)]);
            },
            this);

    const MemTraffic *mt = &traffic_;
    registry.probe("memscope.mem.line_l1",
                   [mt] { return double(mt->line_level[0]); }, this);
    registry.probe("memscope.mem.line_l2",
                   [mt] { return double(mt->line_level[1]); }, this);
    registry.probe("memscope.mem.line_dram",
                   [mt] { return double(mt->line_level[2]); }, this);
    registry.probe("memscope.mem.l2_fill_bytes",
                   [mt] { return double(mt->l2_fill_bytes); }, this);
    registry.probe("memscope.mem.bank_requests",
                   [mt] { return double(mt->bank_requests); }, this);
    registry.probe("memscope.mem.bank_conflicts",
                   [mt] { return double(mt->bank_conflicts); }, this);
    registry.probe("memscope.mem.bank_wait_cycles",
                   [mt] { return double(mt->bank_wait_cycles); },
                   this);

    const DramScope *ds = &dram_;
    registry.probe("memscope.dram.requests",
                   [ds] { return double(ds->requests); }, this);
    registry.probe("memscope.dram.bytes",
                   [ds] { return double(ds->bytes); }, this);
    registry.probe("memscope.dram.row_hits",
                   [ds] { return double(ds->row_hits); }, this);
    registry.probe("memscope.dram.row_misses",
                   [ds] { return double(ds->row_misses); }, this);

    registry.probe("memscope.l1.reuse_cold",
                   [this] {
                       std::uint64_t c = 0;
                       for (const auto &s : l1_scopes_)
                           c += s->cold();
                       return double(c);
                   },
                   this);
    registry.probe("memscope.l1.reuse_tracked",
                   [this] {
                       std::uint64_t a = 0;
                       for (const auto &s : l1_scopes_)
                           a += s->accesses();
                       return double(a);
                   },
                   this);
    registry.probe("memscope.l2.reuse_cold",
                   [this] { return double(l2_scope_.cold()); }, this);
    registry.probe("memscope.l2.reuse_tracked",
                   [this] { return double(l2_scope_.accesses()); },
                   this);
}

void
Collector::writeJson(std::ostream &os,
                     const std::string &scene) const
{
    const NodeCounters t = nodeTotals();
    os << "{\"schema_version\":" << trace::kSchemaVersion;
    if (run_key_.valid())
        os << ",\"run_key\":" << trace::runKeyJson(run_key_);
    os << ",\"scene\":" << trace::quoteJson(scene)
       << ",\"nodes\":{\"accesses\":" << t.accesses
       << ",\"bytes\":" << t.bytes << ",\"lanes\":" << t.lanes
       << ",\"levels\":{";
    for (int l = 0; l < kNumLevels; ++l) {
        if (l)
            os << ',';
        os << trace::quoteJson(kLevelNames[std::size_t(l)]) << ':'
           << t.level[std::size_t(l)];
    }
    os << "}},\"depths\":[";
    const std::vector<DepthCounters> depths = depthTotals();
    bool first = true;
    for (std::size_t d = 0; d < depths.size(); ++d) {
        const DepthCounters &row = depths[d];
        if (row.accesses == 0)
            continue;
        if (!first)
            os << ',';
        first = false;
        os << "{\"depth\":" << d << ",\"accesses\":" << row.accesses
           << ",\"bytes\":" << row.bytes << ",\"lanes\":" << row.lanes;
        writeLevels(os, row.level);
        os << ",\"phases\":{";
        for (int p = 0; p < kNumPhases; ++p) {
            if (p)
                os << ',';
            os << trace::quoteJson(kPhaseNames[std::size_t(p)]) << ':'
               << row.phase[std::size_t(p)];
        }
        os << "}}";
    }
    os << "],\"hot_nodes\":[";
    const std::vector<HotNode> hot = hotNodes(32);
    for (std::size_t i = 0; i < hot.size(); ++i) {
        if (i)
            os << ',';
        os << "{\"node\":" << hot[i].node
           << ",\"depth\":" << hot[i].depth
           << ",\"accesses\":" << hot[i].c.accesses
           << ",\"bytes\":" << hot[i].c.bytes
           << ",\"lanes\":" << hot[i].c.lanes;
        writeLevels(os, hot[i].c.level);
        os << '}';
    }
    os << "],\"reuse\":{\"l1\":";
    std::uint64_t cold, tracked;
    std::array<std::uint64_t, kReuseBuckets> hist;
    l1ReuseTotals(cold, tracked, hist);
    writeReuse(os, cold, tracked, hist);
    os << ",\"l2\":";
    writeReuse(os, l2_scope_.cold(), l2_scope_.accesses(),
               l2_scope_.hist());
    os << ",\"l2_sets_touched\":" << l2_scope_.setsTouched()
       << ",\"l2_set_max_accesses\":" << l2_scope_.maxSetAccesses()
       << "},\"mem\":{\"line_l1\":" << traffic_.line_level[0]
       << ",\"line_l2\":" << traffic_.line_level[1]
       << ",\"line_dram\":" << traffic_.line_level[2]
       << ",\"l2_fill_bytes\":" << traffic_.l2_fill_bytes
       << ",\"bank_requests\":" << traffic_.bank_requests
       << ",\"bank_conflicts\":" << traffic_.bank_conflicts
       << ",\"bank_wait_cycles\":" << traffic_.bank_wait_cycles
       << "},\"dram\":{\"requests\":" << dram_.requests
       << ",\"bytes\":" << dram_.bytes
       << ",\"row_hits\":" << dram_.row_hits
       << ",\"row_misses\":" << dram_.row_misses << "},\"units\":[";
    for (std::size_t i = 0; i < units_.size(); ++i) {
        if (i)
            os << ',';
        os << "{\"sm\":" << i
           << ",\"accesses\":" << units_[i]->accesses
           << ",\"bytes\":" << units_[i]->bytes << '}';
    }
    os << "]}";
}

void
Collector::writeFolded(std::ostream &os,
                       const std::string &scene) const
{
    // Aggregate over SMs, then emit in (depth, node id) order so the
    // file is byte-identical however many workers produced the data.
    std::vector<NodeCounters> merged;
    for (const auto &u : units_) {
        if (u->nodes.size() > merged.size())
            merged.resize(u->nodes.size());
        for (std::size_t i = 0; i < u->nodes.size(); ++i) {
            if (u->nodes[i].accesses == 0)
                continue;
            merged[i].accesses += u->nodes[i].accesses;
            merged[i].depth = u->nodes[i].depth;
        }
    }
    std::vector<std::uint32_t> ids;
    for (std::size_t i = 0; i < merged.size(); ++i)
        if (merged[i].accesses != 0)
            ids.push_back(std::uint32_t(i));
    std::sort(ids.begin(), ids.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  if (merged[a].depth != merged[b].depth)
                      return merged[a].depth < merged[b].depth;
                  return a < b;
              });
    for (const std::uint32_t id : ids)
        os << scene << ";depth" << merged[id].depth << ";node" << id
           << ' ' << merged[id].accesses << '\n';
}

void
Collector::writeHotNodes(std::ostream &os, std::size_t k) const
{
    const std::vector<HotNode> hot = hotNodes(k);
    os << "      node  depth      fetches        bytes    l1-served"
          "  avg-lanes\n";
    for (const HotNode &h : hot) {
        const double l1 =
            h.c.accesses
                ? 100.0 * double(h.c.level[0]) / double(h.c.accesses)
                : 0.0;
        const double lanes =
            h.c.accesses ? double(h.c.lanes) / double(h.c.accesses)
                         : 0.0;
        os << std::setw(10) << h.node << "  " << std::setw(5)
           << h.depth << "  " << std::setw(11) << h.c.accesses
           << "  " << std::setw(11) << h.c.bytes << "  "
           << std::setw(10) << std::fixed << std::setprecision(1)
           << l1 << "%  " << std::setw(9) << std::setprecision(2)
           << lanes << '\n';
    }
    os.unsetf(std::ios::fixed);
}

} // namespace cooprt::memscope

/**
 * @file
 * The BVH-topology & memory-hierarchy profiler (`cooprt::memscope`).
 *
 * The PR-3 stall profiler answers *when* an RT unit waits; this layer
 * answers *what data* it waits on. Every node fetch the RT unit
 * issues is tagged with the node's stable id, its tree depth, the
 * memory level that served it (`MemorySystem::lastFetchDepth()`), the
 * active-lane count of the coalesced pop and the warp's traversal
 * phase — accumulating node-hotness heatmaps, per-depth hit/miss and
 * traffic histograms, and per-depth SIMD divergence. On the memory
 * side it measures cache-line reuse distance (a Mattson LRU stack
 * over line addresses, log2-bucketed, per cache level), L2 bank/set
 * contention, and DRAM row locality.
 *
 * Like `prof`, the layer is compile-always and runtime-enabled:
 * attach a `Collector` through `core::RunConfig::memscope` (or
 * `--memscope` on simulate_cli) to collect; leave it null and hot
 * paths pay a single pointer test — simulated cycle counts are
 * bit-identical either way (pinned-cycle proof in tests/core).
 *
 * Conservation: the memory-side tallies are recorded at the single
 * choke point every access crosses (`MemorySystem::fetch`), so the
 * per-level line counts and byte totals must sum *exactly* to the
 * pre-existing `cache.*` / DRAM counters. Check builds re-derive
 * that identity after every fetch (`memscope.traffic_conservation`);
 * the `MemscopeMisattribution` seeded mutation proves the audit
 * fires.
 *
 * Export views:
 *   - a `memscope` object in the run report and `Collector::writeJson`
 *     (schema checked by tools/validate_memscope.py);
 *   - folded stacks `scene;depth<d>;node<id> N` (writeFolded) for
 *     flamegraph.pl / speedscope — the tree-shaped twin of the prof
 *     stall flamegraph;
 *   - a top-K hot-node table (writeHotNodes);
 *   - `memscope.*` registry probes (registerMetrics) feeding the
 *     metrics-CSV time series;
 *   - Perfetto counter tracks emitted by the Gpu sampler.
 */

#ifndef COOPRT_MEMSCOPE_MEMSCOPE_HPP
#define COOPRT_MEMSCOPE_MEMSCOPE_HPP

#include <array>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/json.hpp"
#include "trace/registry.hpp"

namespace cooprt::memscope {

/** Memory-hierarchy serving levels (mirrors prof::MemLevel). */
constexpr int kNumLevels = 3; // 0 = L1 hit, 1 = L2, 2 = DRAM

/** Traversal phases (mirrors prof::Phase: ramp/traverse/drain). */
constexpr int kNumPhases = 3;

/** log2 reuse-distance buckets: bucket b holds distances d with
    bit_width(d) == b, i.e. 0, 1, 2-3, 4-7, ... (d = distinct lines
    touched between two accesses to the same line). */
constexpr int kReuseBuckets = 32;

/** Per-BVH-node access counters (one row of the node heatmap). */
struct NodeCounters
{
    std::uint64_t accesses = 0; ///< coalesced fetches of this record
    std::uint64_t bytes = 0;    ///< bytes those fetches requested
    std::uint64_t lanes = 0;    ///< consumer-lane sum over fetches
    /** Fetches by serving level (l1 / l2 / dram). */
    std::array<std::uint64_t, kNumLevels> level{};
    /** Tree depth of the node (root = 1; 0 = never seen). */
    std::uint16_t depth = 0;
};

/** Per-tree-depth aggregate (hit/miss, traffic, divergence). */
struct DepthCounters
{
    std::uint64_t accesses = 0;
    std::uint64_t bytes = 0;
    /** Consumer-lane sum: `lanes / accesses` is the mean active-lane
        occupancy per pop at this depth (the divergence metric). */
    std::uint64_t lanes = 0;
    std::array<std::uint64_t, kNumLevels> level{};
    /** Accesses by the requesting warp's traversal phase. */
    std::array<std::uint64_t, kNumPhases> phase{};
};

/**
 * Per-RT-unit accumulation, fed by `RtUnit` at fetch-issue time.
 * Node ids index `nodes` directly (they are dense per FlatBvh);
 * addresses are stable for the lifetime of the owning Collector.
 */
struct UnitScope
{
    std::vector<NodeCounters> nodes;   ///< indexed by stable node id
    std::vector<DepthCounters> depths; ///< indexed by tree depth
    std::uint64_t accesses = 0;
    std::uint64_t bytes = 0;

    /** Tag one coalesced node fetch. */
    void record(std::uint32_t node_id, int depth, int level,
                int lanes, int phase, std::uint32_t bytes);
    void reset();
};

/**
 * Reuse-distance (Mattson LRU stack) and set-contention profiler for
 * one cache instance. `touch()` is O(log n) via a Fenwick tree over
 * access positions; attach through `mem::Cache::attachMemscope`.
 */
class CacheScope
{
  public:
    /** Record one access to @p line mapping to cache set @p set. */
    void touch(std::uint64_t line, std::uint32_t set);

    std::uint64_t accesses() const { return accesses_; }
    /** First-touch accesses (infinite reuse distance). */
    std::uint64_t cold() const { return cold_; }
    /** Re-reference count = sum over hist() buckets. */
    std::uint64_t reused() const { return accesses_ - cold_; }
    const std::array<std::uint64_t, kReuseBuckets> &hist() const
    { return hist_; }

    /** Per-set access counts (contention profile). */
    const std::vector<std::uint64_t> &setAccesses() const
    { return set_accesses_; }
    std::uint64_t maxSetAccesses() const;
    std::size_t setsTouched() const;

    void reset();

  private:
    /** Fenwick prefix sum over positions [0, p). */
    std::uint64_t prefix(std::uint64_t p) const;
    void add(std::uint64_t pos, std::int64_t delta);

    std::unordered_map<std::uint64_t, std::uint64_t> last_pos_;
    /** 1 where a position is some line's most recent touch. */
    std::vector<std::uint8_t> present_;
    std::vector<std::uint64_t> fen_; ///< Fenwick over present_
    std::uint64_t now_ = 0;          ///< next access position

    std::uint64_t accesses_ = 0;
    std::uint64_t cold_ = 0;
    std::array<std::uint64_t, kReuseBuckets> hist_{};
    std::vector<std::uint64_t> set_accesses_;
};

/**
 * Interconnect-side counters, recorded by `mem::MemorySystem` at its
 * fetch choke point. These are the left side of the
 * `memscope.traffic_conservation` identity: `line_level` sums to the
 * aggregate L1 access/hit counters and `l2_fill_bytes` equals
 * `MemSystemStats::l2_bytes` exactly.
 */
struct MemTraffic
{
    /** L1 line accesses by serving level (0 hit / 1 L2 / 2 DRAM;
        MSHR merges count as L2, as lastFetchDepth() does). */
    std::array<std::uint64_t, kNumLevels> line_level{};
    /** Bytes crossing into the L2 (== MemSystemStats::l2_bytes). */
    std::uint64_t l2_fill_bytes = 0;
    std::uint64_t bank_requests = 0;
    /** Requests that found their L2 bank busy. */
    std::uint64_t bank_conflicts = 0;
    /** Cycles requests queued behind busy banks (sum of waits). */
    std::uint64_t bank_wait_cycles = 0;

    std::uint64_t lineTotal() const
    { return line_level[0] + line_level[1] + line_level[2]; }
    void reset() { *this = MemTraffic{}; }
};

/**
 * DRAM row-locality profiler; attach through `Dram::attachMemscope`.
 * A request is a row hit when it lands in the same row of its
 * channel as the previous request to that channel.
 */
struct DramScope
{
    /** Row granularity for locality accounting (2 KB typical). */
    std::uint32_t row_bytes = 2048;
    std::uint64_t requests = 0;
    std::uint64_t bytes = 0;
    std::uint64_t row_hits = 0;
    std::uint64_t row_misses = 0;

    void onAccess(std::uint64_t addr, std::uint32_t bytes,
                  std::uint32_t channel);
    void reset();

  private:
    std::vector<std::int64_t> last_row_; ///< per channel, -1 = none
};

/** Top-K hot-node row (writeHotNodes / JSON "hot_nodes"). */
struct HotNode
{
    std::uint32_t node = 0;
    int depth = 0;
    NodeCounters c;
};

/**
 * Flat roll-up of a run's memscope data, copied into
 * `gpu::GpuRunResult` so reports and benches can consume the
 * attribution without holding the Collector. `enabled` is false (and
 * everything empty) when no collector was attached.
 */
struct Summary
{
    bool enabled = false;
    std::uint64_t node_accesses = 0;
    std::uint64_t node_bytes = 0;
    std::uint64_t node_lanes = 0;
    std::array<std::uint64_t, kNumLevels> node_level{};

    /** One row per touched tree depth (depth = index + 1 skipped;
        row carries its own depth). */
    struct DepthRow
    {
        int depth = 0;
        std::uint64_t accesses = 0;
        std::uint64_t bytes = 0;
        std::uint64_t lanes = 0;
        std::array<std::uint64_t, kNumLevels> level{};

        /** Mean active lanes per coalesced pop at this depth. */
        double avgLanes() const
        { return accesses ? double(lanes) / double(accesses) : 0.0; }
        /** Fraction of fetches at this depth not served by the L1. */
        double missRate() const
        {
            return accesses ? double(level[1] + level[2]) /
                                  double(accesses)
                            : 0.0;
        }
    };
    std::vector<DepthRow> depths;

    MemTraffic traffic;
    std::uint64_t dram_row_hits = 0;
    std::uint64_t dram_row_misses = 0;
    std::uint64_t l1_reuse_cold = 0;
    std::uint64_t l1_reuse_tracked = 0;
    std::uint64_t l2_reuse_cold = 0;
    std::uint64_t l2_reuse_tracked = 0;
};

/**
 * The GPU-wide collector: one UnitScope per SM's RT unit, one
 * CacheScope per L1 (plus one for the L2), the interconnect and DRAM
 * scopes — stable addresses, hierarchical export. Attach through
 * `core::RunConfig::memscope`; each run resets collected data.
 */
class Collector
{
  public:
    Collector() = default;
    ~Collector();

    Collector(const Collector &) = delete;
    Collector &operator=(const Collector &) = delete;

    /** Accessors create on first use; addresses stay valid until the
        Collector dies (registry probes read them live). */
    UnitScope &unit(int sm_id);
    CacheScope &l1Scope(int sm_id);
    CacheScope &l2Scope() { return l2_scope_; }
    MemTraffic &traffic() { return traffic_; }
    DramScope &dram() { return dram_; }

    int unitCount() const { return int(units_.size()); }
    const UnitScope &unitAt(int i) const
    { return *units_[std::size_t(i)]; }
    const CacheScope &l2ScopeConst() const { return l2_scope_; }
    const MemTraffic &trafficConst() const { return traffic_; }
    const DramScope &dramConst() const { return dram_; }

    /** Zero all collected data, keeping addresses stable. */
    void reset();

    /** GPU-level node-heatmap totals (sum over units). */
    NodeCounters nodeTotals() const;
    /** GPU-level per-depth rows, indexed by depth. */
    std::vector<DepthCounters> depthTotals() const;
    /** GPU-level top-@p k hottest nodes (by accesses, id ties). */
    std::vector<HotNode> hotNodes(std::size_t k) const;
    /** L1 reuse histogram aggregated over SMs. */
    void l1ReuseTotals(std::uint64_t &cold, std::uint64_t &tracked,
                       std::array<std::uint64_t, kReuseBuckets> &hist)
        const;

    /** Flat roll-up for GpuRunResult (enabled = true). */
    Summary summary() const;

    /**
     * Publish `memscope.*` probes into @p registry: per-SM
     * `memscope.sm<i>.*`, GPU-level `memscope.gpu.*`, interconnect
     * `memscope.mem.*`, DRAM `memscope.dram.*` and reuse
     * `memscope.l1.* / memscope.l2.*`. Idempotent; probes are
     * dropped in the destructor (the registry must outlive this
     * object). This file is the single registration authority for
     * `memscope.*` (tools/lint_stats_registry.py enforces it).
     */
    void registerMetrics(cooprt::trace::Registry &registry);

    /** Hierarchical JSON (schema: tools/validate_memscope.py). */
    void writeJson(std::ostream &os, const std::string &scene) const;

    /**
     * Folded-stack flamegraph lines, one per touched node:
     *
     *     <scene>;depth<d>;node<id> <accesses>
     *
     * in (depth, node id) order — deterministic and directly
     * consumable by flamegraph.pl or speedscope.
     */
    void writeFolded(std::ostream &os, const std::string &scene) const;

    /** Human-readable top-@p k hot-node table. */
    void writeHotNodes(std::ostream &os, std::size_t k) const;

    /** Stamp the run identity (called by `Simulation::run`); emitted
     *  into writeJson. Metadata only — survives reset(). */
    void setRunKey(const cooprt::trace::RunKeyFields &key)
    { run_key_ = key; }
    const cooprt::trace::RunKeyFields &runKey() const
    { return run_key_; }

  private:
    std::vector<std::unique_ptr<UnitScope>> units_;
    std::vector<std::unique_ptr<CacheScope>> l1_scopes_;
    CacheScope l2_scope_;
    MemTraffic traffic_;
    DramScope dram_;
    cooprt::trace::Registry *registry_ = nullptr;
    cooprt::trace::RunKeyFields run_key_;
};

} // namespace cooprt::memscope

#endif // COOPRT_MEMSCOPE_MEMSCOPE_HPP

#include "bvh/builder.hpp"

#include <algorithm>
#include <limits>

namespace cooprt::bvh {

using geom::AABB;
using geom::Vec3;

namespace {

/** Per-primitive build record: bounds and centroid, computed once. */
struct PrimInfo
{
    AABB bounds;
    Vec3 centroid;
    std::uint32_t prim;
};

struct Bin
{
    AABB bounds;
    std::uint32_t count = 0;
};

/** Recursive builder working over a [begin, end) slice of prims. */
class Builder
{
  public:
    Builder(std::vector<PrimInfo> &prims, const BuildConfig &cfg,
            std::vector<BinaryNode> &nodes)
        : prims_(prims), cfg_(cfg), nodes_(nodes)
    {}

    /** Build the subtree over [begin, end); returns its node index. */
    std::int32_t
    build(std::uint32_t begin, std::uint32_t end)
    {
        AABB bounds;
        AABB centroid_bounds;
        for (std::uint32_t i = begin; i < end; ++i) {
            bounds.grow(prims_[i].bounds);
            centroid_bounds.grow(prims_[i].centroid);
        }

        const std::int32_t node_idx =
            static_cast<std::int32_t>(nodes_.size());
        nodes_.push_back({});
        nodes_[node_idx].bounds = bounds;

        const std::uint32_t count = end - begin;
        if (count <= std::uint32_t(cfg_.max_leaf_size)) {
            makeLeaf(node_idx, begin, count);
            return node_idx;
        }

        std::uint32_t mid =
            cfg_.strategy == SplitStrategy::MedianSplit
                ? medianSplit(begin, end, centroid_bounds)
                : findSplit(begin, end, bounds, centroid_bounds);
        if (mid == begin || mid == end) {
            // SAH refused to split (or all centroids coincide):
            // median split keeps the depth logarithmic.
            mid = begin + count / 2;
        }

        const std::int32_t l = build(begin, mid);
        const std::int32_t r = build(mid, end);
        nodes_[node_idx].left = l;
        nodes_[node_idx].right = r;
        return node_idx;
    }

  private:
    void
    makeLeaf(std::int32_t node_idx, std::uint32_t begin,
             std::uint32_t count)
    {
        nodes_[node_idx].first_prim = begin;
        nodes_[node_idx].prim_count = count;
    }

    /** Object-median split on the widest centroid axis. */
    std::uint32_t
    medianSplit(std::uint32_t begin, std::uint32_t end,
                const AABB &centroid_bounds)
    {
        const int axis = centroid_bounds.extent().maxAxis();
        const std::uint32_t mid = begin + (end - begin) / 2;
        std::nth_element(
            prims_.begin() + begin, prims_.begin() + mid,
            prims_.begin() + end,
            [axis](const PrimInfo &a, const PrimInfo &b) {
                return a.centroid[axis] < b.centroid[axis];
            });
        return mid;
    }

    /**
     * Binned SAH split: returns the partition point in [begin, end],
     * with begin/end meaning "no profitable split found".
     */
    std::uint32_t
    findSplit(std::uint32_t begin, std::uint32_t end, const AABB &bounds,
              const AABB &centroid_bounds)
    {
        const Vec3 cext = centroid_bounds.extent();
        const int axis = cext.maxAxis();
        if (cext[axis] <= 1e-12f)
            return begin; // all centroids coincide

        const int nbins = cfg_.bins;
        std::vector<Bin> bins(nbins);
        const float scale = float(nbins) / cext[axis];
        auto binOf = [&](const PrimInfo &p) {
            int b = int((p.centroid[axis] - centroid_bounds.lo[axis]) *
                        scale);
            return b < 0 ? 0 : (b >= nbins ? nbins - 1 : b);
        };

        for (std::uint32_t i = begin; i < end; ++i) {
            Bin &b = bins[binOf(prims_[i])];
            b.bounds.grow(prims_[i].bounds);
            b.count++;
        }

        // Sweep: suffix areas right-to-left, then prefix left-to-right.
        std::vector<float> right_area(nbins);
        AABB acc;
        std::uint32_t right_count = 0;
        std::vector<std::uint32_t> right_counts(nbins);
        for (int b = nbins - 1; b > 0; --b) {
            acc.grow(bins[b].bounds);
            right_count += bins[b].count;
            right_area[b] = acc.surfaceArea();
            right_counts[b] = right_count;
        }

        float best_cost = std::numeric_limits<float>::infinity();
        int best_split = -1;
        acc = AABB{};
        std::uint32_t left_count = 0;
        const float inv_root_area =
            1.0f / (bounds.surfaceArea() + 1e-30f);
        for (int b = 0; b < nbins - 1; ++b) {
            acc.grow(bins[b].bounds);
            left_count += bins[b].count;
            if (left_count == 0 || right_counts[b + 1] == 0)
                continue;
            const float cost =
                cfg_.traversal_cost +
                cfg_.intersect_cost * inv_root_area *
                    (acc.surfaceArea() * left_count +
                     right_area[b + 1] * right_counts[b + 1]);
            if (cost < best_cost) {
                best_cost = cost;
                best_split = b;
            }
        }

        const float leaf_cost = cfg_.intersect_cost * float(end - begin);
        if (best_split < 0 || best_cost >= leaf_cost) {
            // Only refuse when a leaf is actually allowed here.
            if (end - begin <= std::uint32_t(cfg_.max_leaf_size))
                return begin;
            if (best_split < 0)
                return begin; // fall back to median in caller
        }

        auto it = std::partition(
            prims_.begin() + begin, prims_.begin() + end,
            [&](const PrimInfo &p) { return binOf(p) <= best_split; });
        return std::uint32_t(it - prims_.begin());
    }

    std::vector<PrimInfo> &prims_;
    const BuildConfig &cfg_;
    std::vector<BinaryNode> &nodes_;
};

int
depthOf(const std::vector<BinaryNode> &nodes, std::int32_t idx)
{
    const BinaryNode &n = nodes[idx];
    if (n.isLeaf())
        return 1;
    const int l = depthOf(nodes, n.left);
    const int r = depthOf(nodes, n.right);
    return 1 + (l > r ? l : r);
}

} // namespace

int
BinaryBvh::maxDepth() const
{
    return nodes.empty() ? 0 : depthOf(nodes, 0);
}

std::size_t
BinaryBvh::leafCount() const
{
    std::size_t c = 0;
    for (const auto &n : nodes)
        c += n.isLeaf();
    return c;
}

BinaryBvh
buildBinaryBvh(const scene::Mesh &mesh, const BuildConfig &config)
{
    BinaryBvh out;
    if (mesh.empty())
        return out;

    std::vector<PrimInfo> prims(mesh.size());
    for (std::uint32_t i = 0; i < mesh.size(); ++i) {
        prims[i].bounds = mesh.tri(i).bounds();
        prims[i].centroid = prims[i].bounds.centroid();
        prims[i].prim = i;
    }

    out.nodes.reserve(2 * mesh.size());
    Builder builder(prims, config, out.nodes);
    builder.build(0, std::uint32_t(prims.size()));

    out.prim_order.resize(prims.size());
    for (std::size_t i = 0; i < prims.size(); ++i)
        out.prim_order[i] = prims[i].prim;
    return out;
}

} // namespace cooprt::bvh

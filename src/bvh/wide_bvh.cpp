#include "bvh/wide_bvh.hpp"

#include <algorithm>

namespace cooprt::bvh {

namespace {

/**
 * Select up to kWideArity binary-subtree roots to become the children
 * of one wide node: start from the two binary children and repeatedly
 * expand the candidate with the largest surface area.
 */
void
gatherWideChildren(const BinaryBvh &bin, std::int32_t root,
                   std::vector<std::int32_t> &out)
{
    out.clear();
    const BinaryNode &r = bin.nodes[root];
    out.push_back(r.left);
    out.push_back(r.right);
    while (out.size() < std::size_t(kWideArity)) {
        // Pick the internal candidate with the largest surface area.
        int best = -1;
        float best_area = -1.0f;
        for (std::size_t i = 0; i < out.size(); ++i) {
            const BinaryNode &n = bin.nodes[out[i]];
            if (n.isLeaf())
                continue;
            const float a = n.bounds.surfaceArea();
            if (a > best_area) {
                best_area = a;
                best = int(i);
            }
        }
        if (best < 0)
            break; // only leaves left
        const BinaryNode &n = bin.nodes[out[best]];
        out[best] = n.left;
        out.push_back(n.right);
    }
}

struct CollapseCtx
{
    const BinaryBvh &bin;
    WideBvh &wide;

    /** Emit a wide node for the binary subtree @p root. */
    std::int32_t
    emit(std::int32_t root)
    {
        const BinaryNode &bn = bin.nodes[root];
        const std::int32_t idx =
            static_cast<std::int32_t>(wide.nodes.size());
        wide.nodes.push_back({});
        wide.nodes[idx].bounds = bn.bounds;

        if (bn.isLeaf()) {
            wide.nodes[idx].first_prim = bn.first_prim;
            wide.nodes[idx].prim_count = bn.prim_count;
            return idx;
        }

        std::vector<std::int32_t> kids;
        gatherWideChildren(bin, root, kids);
        wide.nodes[idx].child_count =
            static_cast<std::uint8_t>(kids.size());
        for (std::size_t c = 0; c < kids.size(); ++c) {
            const std::int32_t w = emit(kids[c]);
            wide.nodes[idx].child[c] = w;
        }
        return idx;
    }
};

int
wideDepthOf(const std::vector<WideNode> &nodes, std::int32_t idx)
{
    const WideNode &n = nodes[idx];
    if (n.isLeaf())
        return 1;
    int best = 0;
    for (int c = 0; c < n.child_count; ++c)
        best = std::max(best, wideDepthOf(nodes, n.child[c]));
    return 1 + best;
}

} // namespace

int
WideBvh::maxDepth() const
{
    return nodes.empty() ? 0 : wideDepthOf(nodes, 0);
}

std::size_t
WideBvh::leafCount() const
{
    std::size_t c = 0;
    for (const auto &n : nodes)
        c += n.isLeaf();
    return c;
}

std::size_t
WideBvh::internalCount() const
{
    return nodes.size() - leafCount();
}

WideBvh
collapseToWide(const BinaryBvh &binary)
{
    WideBvh out;
    out.prim_order = binary.prim_order;
    if (binary.empty())
        return out;
    out.nodes.reserve(binary.nodes.size());
    CollapseCtx ctx{binary, out};
    ctx.emit(0);
    return out;
}

WideBvh
buildWideBvh(const scene::Mesh &mesh, const BuildConfig &config)
{
    return collapseToWide(buildBinaryBvh(mesh, config));
}

} // namespace cooprt::bvh

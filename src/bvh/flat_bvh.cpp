#include "bvh/flat_bvh.hpp"

namespace cooprt::bvh {

using geom::AABB;
using geom::QuantFrame;
using geom::QuantizedAabb;

namespace {

/** Map a wide node to a NodeRef given the internal-index remap. */
NodeRef
refFor(const WideBvh &wide, std::int32_t wide_idx,
       const std::vector<std::int32_t> &internal_index)
{
    const WideNode &n = wide.nodes[wide_idx];
    if (n.isLeaf())
        return NodeRef::leaf(n.first_prim, n.prim_count);
    return NodeRef::internal(
        static_cast<std::uint32_t>(internal_index[wide_idx]));
}

} // namespace

FlatBvh::FlatBvh(const WideBvh &wide)
{
    prim_order_ = wide.prim_order;
    if (wide.empty())
        return;

    root_bounds_ = wide.root().bounds;
    max_depth_ = wide.maxDepth();

    // Internal nodes get compact indices in emission (pre)order.
    std::vector<std::int32_t> internal_index(wide.nodes.size(), -1);
    std::int32_t next = 0;
    for (std::size_t i = 0; i < wide.nodes.size(); ++i)
        if (!wide.nodes[i].isLeaf())
            internal_index[i] = next++;

    nodes_.resize(std::size_t(next));
    for (std::size_t i = 0; i < wide.nodes.size(); ++i) {
        const WideNode &w = wide.nodes[i];
        if (w.isLeaf())
            continue;
        PackedNode &p = nodes_[std::size_t(internal_index[i])];
        p.frame = QuantFrame::forParent(w.bounds);
        p.child_count = w.child_count;
        for (int c = 0; c < w.child_count; ++c) {
            const WideNode &ch = wide.nodes[w.child[c]];
            p.qbox[c] = QuantizedAabb::encode(ch.bounds, p.frame);
            p.child_bits[c] =
                refFor(wide, w.child[c], internal_index).raw();
        }
    }

    root_ = refFor(wide, 0, internal_index);

    // Topology tables (memscope): emission order is preorder, so a
    // parent always precedes its children and one forward scan
    // propagates depths (root = 1). Leaves get dense ids after the
    // internal nodes, in the same emission order.
    std::vector<std::uint8_t> wide_depth(wide.nodes.size(), 1);
    for (std::size_t i = 0; i < wide.nodes.size(); ++i) {
        const WideNode &w = wide.nodes[i];
        if (w.isLeaf())
            continue;
        for (int c = 0; c < w.child_count; ++c)
            wide_depth[std::size_t(w.child[c])] =
                std::uint8_t(wide_depth[i] + 1);
    }
    internal_depth_.resize(std::size_t(next));
    leaf_depth_by_slot_.assign(prim_order_.size(), 0);
    leaf_id_by_slot_.assign(prim_order_.size(), 0);
    std::uint32_t leaf_ordinal = 0;
    for (std::size_t i = 0; i < wide.nodes.size(); ++i) {
        const WideNode &w = wide.nodes[i];
        if (!w.isLeaf()) {
            internal_depth_[std::size_t(internal_index[i])] =
                wide_depth[i];
            continue;
        }
        for (std::uint32_t s = 0; s < w.prim_count; ++s) {
            leaf_depth_by_slot_[w.first_prim + s] = wide_depth[i];
            leaf_id_by_slot_[w.first_prim + s] = leaf_ordinal;
        }
        ++leaf_ordinal;
    }
    leaf_count_ = leaf_ordinal;
}

ChildInfo
FlatBvh::child(NodeRef ref, int i) const
{
    const PackedNode &p = nodes_[ref.nodeIndex()];
    ChildInfo info;
    info.box = p.qbox[i].decode(p.frame);
    NodeRef r;
    // Reconstruct the NodeRef from its raw bits.
    if (p.child_bits[i] & 0x80000000u)
        r = NodeRef::leaf(p.child_bits[i] & 0x00ffffffu,
                          (p.child_bits[i] >> 24) & 0x7fu);
    else
        r = NodeRef::internal(p.child_bits[i]);
    info.ref = r;
    return info;
}

TreeStats
FlatBvh::stats() const
{
    TreeStats s;
    s.internal_nodes = nodes_.size();
    s.triangles = prim_order_.size();
    // Leaves are not materialized as records; count distinct leaf refs.
    std::size_t leaves = 0;
    for (const auto &n : nodes_)
        for (int c = 0; c < n.child_count; ++c)
            leaves += (n.child_bits[c] & 0x80000000u) != 0;
    if (nodes_.empty() && !prim_order_.empty() && root_.isLeaf())
        leaves = 1; // degenerate tree: the root itself is a leaf
    s.leaf_nodes = leaves;
    s.size_bytes = nodes_.size() * kNodeBytes +
                   prim_order_.size() * kTriBytes;
    s.max_depth = max_depth_;
    return s;
}

} // namespace cooprt::bvh

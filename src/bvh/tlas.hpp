/**
 * @file
 * Two-level acceleration structure: a top-level BVH (TLAS) over
 * rigid-transformed instances of bottom-level BVHs (BLAS) — the
 * Vulkan acceleration-structure model (paper Section 2.3; the
 * "Coordinate Transform" block of Figs. 3 and 7 exists precisely to
 * move rays into BLAS object space during traversal).
 *
 * The TLAS here is functional-level: it provides instanced closest-
 * hit/any-hit queries and instance-aware statistics. The timing
 * simulator operates on single-level (flattened) BVHs; see DESIGN.md.
 */

#ifndef COOPRT_BVH_TLAS_HPP
#define COOPRT_BVH_TLAS_HPP

#include <memory>
#include <vector>

#include "bvh/traversal.hpp"
#include "geom/transform.hpp"

namespace cooprt::bvh {

/** One placed instance of a bottom-level structure. */
struct Instance
{
    /** Index into the TLAS's BLAS array. */
    std::uint32_t blas = 0;
    /** Object-to-world rigid transform. */
    geom::RigidTransform to_world;
};

/** Closest hit through a TLAS: the hit plus which instance was hit. */
struct InstancedHit
{
    geom::HitRecord hit;          ///< world-space record
    std::uint32_t instance = 0xffffffffu;

    bool valid() const { return hit.hit(); }
};

/**
 * A bottom-level structure: a mesh with its flat BVH, shared by any
 * number of instances.
 */
class Blas
{
  public:
    explicit Blas(scene::Mesh mesh_in)
        : mesh(std::move(mesh_in)), flat(buildWideBvh(mesh))
    {}

    scene::Mesh mesh;
    FlatBvh flat;
};

/**
 * The top-level structure: instances with transforms, plus a binary
 * BVH over the instances' world bounds for logarithmic instance
 * culling.
 */
class Tlas
{
  public:
    /** Add a BLAS; returns its index for use in instances. */
    std::uint32_t addBlas(std::shared_ptr<Blas> blas);

    /** Place an instance; returns its index. */
    std::uint32_t addInstance(const Instance &instance);

    /** Build the top-level BVH. Call after all instances are added. */
    void build();

    std::size_t blasCount() const { return blas_.size(); }
    std::size_t instanceCount() const { return instances_.size(); }
    const Instance &instance(std::uint32_t i) const
    { return instances_[i]; }
    const Blas &blasOf(const Instance &inst) const
    { return *blas_[inst.blas]; }

    /** World bounds over all instances (empty before build()). */
    const geom::AABB &worldBounds() const { return world_bounds_; }

    /** Total triangles summed over instances (with reuse counted). */
    std::size_t instancedTriangles() const;
    /** Unique triangles stored (each BLAS once) — the memory saving. */
    std::size_t storedTriangles() const;

    /**
     * Closest hit through the two-level structure: traverse the TLAS,
     * transform the ray into each intersected instance's object space
     * and traverse its BLAS; hit distances are world-valid (rigid
     * transforms).
     */
    InstancedHit closestHit(const geom::Ray &ray) const;

    /** Any-hit query through the two-level structure. */
    bool anyHit(const geom::Ray &ray) const;

  private:
    struct TlasNode
    {
        geom::AABB bounds;
        std::int32_t left = -1;  ///< child index, or -1 when leaf
        std::int32_t right = -1;
        std::uint32_t instance = 0; ///< leaf payload

        bool isLeaf() const { return left < 0; }
    };

    std::int32_t buildNode(std::vector<std::uint32_t> &order,
                           std::size_t begin, std::size_t end);

    std::vector<std::shared_ptr<Blas>> blas_;
    std::vector<Instance> instances_;
    std::vector<geom::AABB> instance_bounds_; ///< world-space
    std::vector<TlasNode> nodes_;
    geom::AABB world_bounds_;
    bool built_ = false;
};

} // namespace cooprt::bvh

#endif // COOPRT_BVH_TLAS_HPP

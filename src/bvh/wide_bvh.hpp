/**
 * @file
 * 6-ary (wide) BVH, following the MESA/Vulkan-sim convention assumed
 * by the paper's Algorithm 1 ("for i = 0 to 5 // 6-ary tree").
 */

#ifndef COOPRT_BVH_WIDE_BVH_HPP
#define COOPRT_BVH_WIDE_BVH_HPP

#include <cstdint>
#include <vector>

#include "bvh/builder.hpp"

namespace cooprt::bvh {

/** Maximum children of a wide node (paper: 6-ary tree). */
constexpr int kWideArity = 6;

/**
 * A node of the wide BVH. Internal nodes have 1..6 children; leaves
 * reference a contiguous primitive range of `WideBvh::prim_order`.
 */
struct WideNode
{
    geom::AABB bounds;
    std::int32_t child[kWideArity] = {-1, -1, -1, -1, -1, -1};
    std::uint8_t child_count = 0;
    /** Leaf payload. */
    std::uint32_t first_prim = 0;
    std::uint32_t prim_count = 0;

    bool isLeaf() const { return child_count == 0; }
};

/**
 * The 6-wide BVH obtained by collapsing a binary BVH: each internal
 * node repeatedly inlines the child subtree with the largest surface
 * area until it has `kWideArity` children (or only leaves remain).
 */
struct WideBvh
{
    std::vector<WideNode> nodes;            ///< nodes[0] is the root
    std::vector<std::uint32_t> prim_order;  ///< leaf ranges index this

    bool empty() const { return nodes.empty(); }
    const WideNode &root() const { return nodes[0]; }

    /** Maximum leaf depth (root = 1); 0 for empty trees. */
    int maxDepth() const;
    std::size_t leafCount() const;
    std::size_t internalCount() const;
};

/** Collapse @p binary into a 6-wide BVH. */
WideBvh collapseToWide(const BinaryBvh &binary);

/** Convenience: build binary and collapse in one call. */
WideBvh buildWideBvh(const scene::Mesh &mesh,
                     const BuildConfig &config = {});

} // namespace cooprt::bvh

#endif // COOPRT_BVH_WIDE_BVH_HPP

/**
 * @file
 * Reference (CPU, functional-only) BVH traversal — the oracle against
 * which the RT-unit timing model's results are property-tested, and a
 * direct implementation of the paper's Algorithm 1.
 */

#ifndef COOPRT_BVH_TRAVERSAL_HPP
#define COOPRT_BVH_TRAVERSAL_HPP

#include "bvh/flat_bvh.hpp"
#include "geom/ray.hpp"
#include "scene/mesh.hpp"

namespace cooprt::bvh {

/** Counters gathered by the instrumented traversal. */
struct TraversalStats
{
    std::uint64_t nodes_visited = 0;  ///< internal records fetched
    std::uint64_t leaves_visited = 0; ///< leaf records fetched
    std::uint64_t box_tests = 0;
    std::uint64_t tri_tests = 0;
    std::uint64_t max_stack_depth = 0;
};

/**
 * Closest-hit DFS traversal (Algorithm 1): stack of NodeRefs, child
 * boxes culled against the running min_thit.
 *
 * @param stats Optional counter sink.
 */
geom::HitRecord closestHit(const FlatBvh &bvh, const scene::Mesh &mesh,
                           const geom::Ray &ray,
                           TraversalStats *stats = nullptr);

/**
 * Any-hit traversal: returns as soon as any intersection within the
 * ray interval is found (shadow/occlusion queries).
 */
bool anyHit(const FlatBvh &bvh, const scene::Mesh &mesh,
            const geom::Ray &ray, TraversalStats *stats = nullptr);

/**
 * O(n) reference: test every triangle. Used only by tests to validate
 * the BVH traversals.
 */
geom::HitRecord bruteForceClosest(const scene::Mesh &mesh,
                                  const geom::Ray &ray);

} // namespace cooprt::bvh

#endif // COOPRT_BVH_TRAVERSAL_HPP

/**
 * @file
 * Binned surface-area-heuristic (SAH) BVH builder.
 *
 * The paper builds BVHs with Embree 3.14 (Section 2.1); this builder
 * is our from-scratch equivalent: a top-down binned SAH build
 * producing a binary tree, which `WideBvh` then collapses to the
 * 6-ary MESA/Vulkan-sim layout assumed by Algorithm 1.
 */

#ifndef COOPRT_BVH_BUILDER_HPP
#define COOPRT_BVH_BUILDER_HPP

#include <cstdint>
#include <vector>

#include "geom/aabb.hpp"
#include "scene/mesh.hpp"

namespace cooprt::bvh {

/** Top-down split strategy. */
enum class SplitStrategy
{
    /** Binned surface-area heuristic (the quality default). */
    BinnedSah,
    /**
     * Object-median split on the widest centroid axis — the fast,
     * low-quality builder used as the tree-quality ablation (BVH
     * quality affects traversal length and hence CoopRT's headroom).
     */
    MedianSplit,
};

/** Parameters of the top-down build. */
struct BuildConfig
{
    SplitStrategy strategy = SplitStrategy::BinnedSah;
    /** Number of SAH bins per axis. */
    int bins = 16;
    /** Maximum primitives per leaf. */
    int max_leaf_size = 4;
    /** SAH cost of one traversal step relative to one intersection. */
    float traversal_cost = 1.0f;
    /** SAH cost of one primitive intersection. */
    float intersect_cost = 1.5f;
};

/**
 * A node of the intermediate binary BVH. Leaves reference a contiguous
 * range of `BinaryBvh::prim_order`.
 */
struct BinaryNode
{
    geom::AABB bounds;
    /** Children indices, or -1 for leaves. */
    std::int32_t left = -1;
    std::int32_t right = -1;
    /** Leaf payload: range [first_prim, first_prim + prim_count). */
    std::uint32_t first_prim = 0;
    std::uint32_t prim_count = 0;

    bool isLeaf() const { return left < 0; }
};

/** The intermediate binary BVH produced by the builder. */
struct BinaryBvh
{
    std::vector<BinaryNode> nodes;   ///< nodes[0] is the root
    std::vector<std::uint32_t> prim_order; ///< leaf ranges index this

    bool empty() const { return nodes.empty(); }
    const BinaryNode &root() const { return nodes[0]; }

    /** Maximum leaf depth (root = 1). 0 for an empty tree. */
    int maxDepth() const;
    /** Number of leaf nodes. */
    std::size_t leafCount() const;
};

/**
 * Build a binary BVH over @p mesh.
 *
 * The build is deterministic. Degenerate primitive distributions
 * (all centroids identical) fall back to median splits so the tree
 * depth stays logarithmic.
 */
BinaryBvh buildBinaryBvh(const scene::Mesh &mesh,
                         const BuildConfig &config = {});

} // namespace cooprt::bvh

#endif // COOPRT_BVH_BUILDER_HPP

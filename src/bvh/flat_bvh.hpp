/**
 * @file
 * Flat, byte-addressed BVH layout — the memory image that the RT-unit
 * timing model fetches through the cache hierarchy.
 *
 * Layout summary (one compressed internal-node record per wide node):
 *
 *  - Internal node record: `kNodeBytes` (128) bytes at
 *    `node_base + index * kNodeBytes`. It stores a quantization frame
 *    plus up to 6 children, each with an 8-bit-quantized conservative
 *    AABB (RTX-style compressed wide node).
 *  - Leaf record: the primitives themselves, `kTriBytes` (64) bytes
 *    per triangle at `tri_base + slot * kTriBytes`, where `slot` is
 *    the position in the BVH's primitive order (leaf ranges are
 *    contiguous, so one leaf is one contiguous fetch).
 *
 * Traversal-visible handles are `NodeRef`s: a packed (is_leaf, index,
 * count) triple that the traversal stack stores, exactly like the
 * "addresses of the nodes" in the paper's traversal stack.
 */

#ifndef COOPRT_BVH_FLAT_BVH_HPP
#define COOPRT_BVH_FLAT_BVH_HPP

#include <cstdint>
#include <vector>

#include "bvh/wide_bvh.hpp"
#include "geom/quantized_aabb.hpp"

namespace cooprt::bvh {

/** Serialized size of one internal node record (bytes). */
constexpr std::uint32_t kNodeBytes = 128;
/** Serialized size of one triangle leaf record (bytes). */
constexpr std::uint32_t kTriBytes = 64;
/** Base virtual address of the internal-node array. */
constexpr std::uint64_t kNodeBase = 0x1000'0000ULL;
/** Base virtual address of the triangle array. */
constexpr std::uint64_t kTriBase = 0x4000'0000ULL;

/**
 * A packed reference to a BVH node (internal or leaf), as stored on
 * the per-thread traversal stacks.
 *
 * Bit layout: [31] leaf flag; leaf: [30:24] prim count, [23:0] first
 * slot in prim order; internal: [30:0] node index.
 */
class NodeRef
{
  public:
    NodeRef() = default;

    static NodeRef
    internal(std::uint32_t index)
    {
        NodeRef r;
        r.bits_ = index;
        return r;
    }

    static NodeRef
    leaf(std::uint32_t first_slot, std::uint32_t count)
    {
        NodeRef r;
        r.bits_ = 0x80000000u | (count << 24) | first_slot;
        return r;
    }

    bool isLeaf() const { return bits_ & 0x80000000u; }
    /** Internal node index (internal refs only). */
    std::uint32_t nodeIndex() const { return bits_ & 0x7fffffffu; }
    /** First primitive slot (leaf refs only). */
    std::uint32_t firstSlot() const { return bits_ & 0x00ffffffu; }
    /** Primitive count (leaf refs only). */
    std::uint32_t primCount() const { return (bits_ >> 24) & 0x7fu; }

    std::uint32_t raw() const { return bits_; }
    bool operator==(const NodeRef &o) const { return bits_ == o.bits_; }

  private:
    std::uint32_t bits_ = 0;
};

/** One decoded child of a compressed internal node. */
struct ChildInfo
{
    /** Conservative (quantization-inflated) child bounds. */
    geom::AABB box;
    NodeRef ref;
};

/** Aggregate statistics reported by Table 2. */
struct TreeStats
{
    std::size_t internal_nodes = 0;
    std::size_t leaf_nodes = 0;
    std::size_t triangles = 0;
    std::size_t size_bytes = 0;
    int max_depth = 0;

    double sizeMiB() const { return double(size_bytes) / (1 << 20); }
};

/**
 * The flat BVH. Owns the compressed node array and the primitive
 * order; provides address arithmetic for the timing model and decode
 * accessors for intersection tests.
 */
class FlatBvh
{
  public:
    FlatBvh() = default;

    /** Serialize @p wide (prim order is copied). */
    explicit FlatBvh(const WideBvh &wide);

    bool empty() const { return nodes_.empty(); }

    /** Root reference (the paper pushes this after the root box hit). */
    NodeRef root() const { return root_; }

    /** World bounds of the whole scene (the root AABB). */
    const geom::AABB &rootBounds() const { return root_bounds_; }

    /** Number of decoded children of internal node @p ref. */
    int childCount(NodeRef ref) const
    { return nodes_[ref.nodeIndex()].child_count; }

    /** Decode child @p i of internal node @p ref. */
    ChildInfo child(NodeRef ref, int i) const;

    /**
     * Primitive id (index into the original mesh) stored at leaf slot
     * @p slot of the primitive order.
     */
    std::uint32_t primAt(std::uint32_t slot) const
    { return prim_order_[slot]; }

    /** Byte address of the record behind @p ref. */
    std::uint64_t
    addressOf(NodeRef ref) const
    {
        if (ref.isLeaf())
            return kTriBase + std::uint64_t(ref.firstSlot()) * kTriBytes;
        return kNodeBase + std::uint64_t(ref.nodeIndex()) * kNodeBytes;
    }

    /** Size in bytes of the fetch required to read @p ref's record. */
    std::uint32_t
    fetchBytes(NodeRef ref) const
    {
        return ref.isLeaf() ? ref.primCount() * kTriBytes : kNodeBytes;
    }

    /** Tree statistics (Table 2 columns). */
    TreeStats stats() const;

    std::size_t nodeCount() const { return nodes_.size(); }
    std::size_t primCount() const { return prim_order_.size(); }

    /**
     * Stable profiling id of @p ref's node. Internal nodes use their
     * compact emission-order index; leaves follow at
     * `nodeCount() + leaf ordinal` (also emission order), so ids are
     * dense in `[0, flatNodeCount())` and survive across identical
     * builds of the same scene.
     */
    std::uint32_t
    nodeIdOf(NodeRef ref) const
    {
        if (ref.isLeaf())
            return std::uint32_t(nodes_.size()) +
                   leaf_id_by_slot_[ref.firstSlot()];
        return ref.nodeIndex();
    }

    /** Tree depth of @p ref's node (root = 1). */
    int
    depthOf(NodeRef ref) const
    {
        if (ref.isLeaf())
            return leaf_depth_by_slot_[ref.firstSlot()];
        return internal_depth_[ref.nodeIndex()];
    }

    /** Distinct addressable nodes (internal + leaf): the id space. */
    std::size_t flatNodeCount() const
    { return nodes_.size() + leaf_count_; }

    /** Deepest leaf level (root = 1); 0 for an empty tree. */
    int maxDepth() const { return max_depth_; }

  private:
    /** In-memory image of one 128-byte compressed node record. */
    struct PackedNode
    {
        geom::QuantFrame frame;            // 24 B logical
        geom::QuantizedAabb qbox[kWideArity]; // 36 B
        std::uint32_t child_bits[kWideArity]; // 24 B (NodeRef raws)
        std::uint8_t child_count = 0;
        // Remaining bytes of the 128-byte record are padding in the
        // serialized form; they are not stored here.
    };

    NodeRef root_;
    geom::AABB root_bounds_;
    int max_depth_ = 0;
    std::vector<PackedNode> nodes_;
    std::vector<std::uint32_t> prim_order_;

    // Topology tables for the memscope profiler: leaves carry no
    // record of their own, so they are keyed by their (unique) first
    // primitive slot. Every slot of a leaf's range maps to the same
    // leaf, which keeps the lookup branch-free.
    std::size_t leaf_count_ = 0;
    std::vector<std::uint8_t> internal_depth_;
    std::vector<std::uint8_t> leaf_depth_by_slot_;
    std::vector<std::uint32_t> leaf_id_by_slot_;
};

} // namespace cooprt::bvh

#endif // COOPRT_BVH_FLAT_BVH_HPP

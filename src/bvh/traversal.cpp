#include "bvh/traversal.hpp"

#include <algorithm>
#include <vector>

namespace cooprt::bvh {

using geom::HitRecord;
using geom::kNoHit;
using geom::Ray;

namespace {

/** Intersect the primitives of leaf @p ref; update @p rec. */
void
testLeaf(const FlatBvh &bvh, const scene::Mesh &mesh, const Ray &ray,
         NodeRef ref, HitRecord &rec, TraversalStats *stats)
{
    for (std::uint32_t k = 0; k < ref.primCount(); ++k) {
        const std::uint32_t prim = bvh.primAt(ref.firstSlot() + k);
        if (stats)
            stats->tri_tests++;
        const float t = mesh.tri(prim).intersect(ray, rec.thit);
        if (t != kNoHit) {
            rec.thit = t;
            rec.prim_id = prim;
            rec.normal = mesh.tri(prim).shadingNormal(ray.dir);
        }
    }
}

} // namespace

HitRecord
closestHit(const FlatBvh &bvh, const scene::Mesh &mesh, const Ray &ray,
           TraversalStats *stats)
{
    HitRecord rec;
    if (bvh.empty() && bvh.primCount() == 0)
        return rec;

    // Algorithm 1 line 1: test the root AABB first.
    if (bvh.rootBounds().intersect(ray, ray.tmax) == kNoHit)
        return rec;

    std::vector<NodeRef> stack;
    stack.push_back(bvh.root());

    while (!stack.empty()) {
        if (stats)
            stats->max_stack_depth =
                std::max<std::uint64_t>(stats->max_stack_depth,
                                        stack.size());
        const NodeRef node = stack.back();
        stack.pop_back();

        if (node.isLeaf()) {
            if (stats)
                stats->leaves_visited++;
            testLeaf(bvh, mesh, ray, node, rec, stats);
            continue;
        }

        if (stats)
            stats->nodes_visited++;
        const int n = bvh.childCount(node);
        for (int i = 0; i < n; ++i) {
            const ChildInfo c = bvh.child(node, i);
            if (stats)
                stats->box_tests++;
            // Algorithm 1 line 8: push only children whose entry
            // distance beats the current closest hit.
            if (c.box.intersect(ray, rec.thit) != kNoHit)
                stack.push_back(c.ref);
        }
    }
    return rec;
}

bool
anyHit(const FlatBvh &bvh, const scene::Mesh &mesh, const Ray &ray,
       TraversalStats *stats)
{
    if (bvh.empty() && bvh.primCount() == 0)
        return false;
    if (bvh.rootBounds().intersect(ray, ray.tmax) == kNoHit)
        return false;

    std::vector<NodeRef> stack;
    stack.push_back(bvh.root());

    while (!stack.empty()) {
        const NodeRef node = stack.back();
        stack.pop_back();

        if (node.isLeaf()) {
            if (stats)
                stats->leaves_visited++;
            for (std::uint32_t k = 0; k < node.primCount(); ++k) {
                const std::uint32_t prim =
                    bvh.primAt(node.firstSlot() + k);
                if (stats)
                    stats->tri_tests++;
                if (mesh.tri(prim).intersect(ray, ray.tmax) != kNoHit)
                    return true;
            }
            continue;
        }

        if (stats)
            stats->nodes_visited++;
        const int n = bvh.childCount(node);
        for (int i = 0; i < n; ++i) {
            const ChildInfo c = bvh.child(node, i);
            if (stats)
                stats->box_tests++;
            if (c.box.intersect(ray, ray.tmax) != kNoHit)
                stack.push_back(c.ref);
        }
    }
    return false;
}

HitRecord
bruteForceClosest(const scene::Mesh &mesh, const Ray &ray)
{
    HitRecord rec;
    for (std::uint32_t i = 0; i < mesh.size(); ++i) {
        const float t = mesh.tri(i).intersect(ray, rec.thit);
        if (t != kNoHit) {
            rec.thit = t;
            rec.prim_id = i;
            rec.normal = mesh.tri(i).shadingNormal(ray.dir);
        }
    }
    return rec;
}

} // namespace cooprt::bvh

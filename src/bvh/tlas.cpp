#include "bvh/tlas.hpp"

#include <algorithm>
#include <stdexcept>

namespace cooprt::bvh {

using geom::AABB;
using geom::kNoHit;
using geom::Ray;

std::uint32_t
Tlas::addBlas(std::shared_ptr<Blas> blas)
{
    if (!blas)
        throw std::invalid_argument("Tlas::addBlas: null blas");
    blas_.push_back(std::move(blas));
    return std::uint32_t(blas_.size() - 1);
}

std::uint32_t
Tlas::addInstance(const Instance &instance)
{
    if (instance.blas >= blas_.size())
        throw std::out_of_range("Tlas::addInstance: bad blas index");
    instances_.push_back(instance);
    built_ = false;
    return std::uint32_t(instances_.size() - 1);
}

std::int32_t
Tlas::buildNode(std::vector<std::uint32_t> &order, std::size_t begin,
                std::size_t end)
{
    AABB bounds;
    for (std::size_t i = begin; i < end; ++i)
        bounds.grow(instance_bounds_[order[i]]);

    const std::int32_t idx = std::int32_t(nodes_.size());
    nodes_.push_back({});
    nodes_[std::size_t(idx)].bounds = bounds;

    if (end - begin == 1) {
        nodes_[std::size_t(idx)].instance = order[begin];
        return idx;
    }

    // Median split on the widest centroid axis.
    AABB cb;
    for (std::size_t i = begin; i < end; ++i)
        cb.grow(instance_bounds_[order[i]].centroid());
    const int axis = cb.extent().maxAxis();
    const std::size_t mid = (begin + end) / 2;
    std::nth_element(order.begin() + std::ptrdiff_t(begin),
                     order.begin() + std::ptrdiff_t(mid),
                     order.begin() + std::ptrdiff_t(end),
                     [&](std::uint32_t a, std::uint32_t b) {
                         return instance_bounds_[a].centroid()[axis] <
                                instance_bounds_[b].centroid()[axis];
                     });
    const std::int32_t l = buildNode(order, begin, mid);
    const std::int32_t r = buildNode(order, mid, end);
    nodes_[std::size_t(idx)].left = l;
    nodes_[std::size_t(idx)].right = r;
    return idx;
}

void
Tlas::build()
{
    nodes_.clear();
    instance_bounds_.clear();
    world_bounds_ = AABB{};
    if (instances_.empty()) {
        built_ = true;
        return;
    }
    instance_bounds_.reserve(instances_.size());
    for (const Instance &inst : instances_) {
        const AABB wb =
            inst.to_world.box(blas_[inst.blas]->flat.rootBounds());
        instance_bounds_.push_back(wb);
        world_bounds_.grow(wb);
    }
    std::vector<std::uint32_t> order(instances_.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = std::uint32_t(i);
    buildNode(order, 0, order.size());
    built_ = true;
}

std::size_t
Tlas::instancedTriangles() const
{
    std::size_t total = 0;
    for (const Instance &inst : instances_)
        total += blas_[inst.blas]->mesh.size();
    return total;
}

std::size_t
Tlas::storedTriangles() const
{
    std::size_t total = 0;
    for (const auto &b : blas_)
        total += b->mesh.size();
    return total;
}

InstancedHit
Tlas::closestHit(const Ray &ray) const
{
    if (!built_)
        throw std::logic_error("Tlas::closestHit before build()");
    InstancedHit best;
    if (nodes_.empty())
        return best;

    std::vector<std::int32_t> stack{0};
    while (!stack.empty()) {
        const TlasNode &n = nodes_[std::size_t(stack.back())];
        stack.pop_back();
        if (n.bounds.intersect(ray, best.hit.thit) == kNoHit)
            continue;
        if (!n.isLeaf()) {
            stack.push_back(n.left);
            stack.push_back(n.right);
            continue;
        }
        // Leaf: transform the ray into the instance's object space
        // (the RT unit's Coordinate Transform step) and traverse its
        // BLAS. Rigid transforms keep t world-valid, so the running
        // closest distance can cross instance boundaries directly.
        const Instance &inst = instances_[n.instance];
        const Blas &b = *blas_[inst.blas];
        Ray obj = inst.to_world.inverse().ray(ray);
        obj.tmax = best.hit.thit < ray.tmax ? best.hit.thit : ray.tmax;
        const geom::HitRecord rec = bvh::closestHit(b.flat, b.mesh, obj);
        if (rec.hit() && rec.thit < best.hit.thit) {
            best.hit = rec;
            // Normal back to world space (rotation only).
            best.hit.normal = inst.to_world.direction(rec.normal);
            best.instance = n.instance;
        }
    }
    return best;
}

bool
Tlas::anyHit(const Ray &ray) const
{
    if (!built_)
        throw std::logic_error("Tlas::anyHit before build()");
    if (nodes_.empty())
        return false;

    std::vector<std::int32_t> stack{0};
    while (!stack.empty()) {
        const TlasNode &n = nodes_[std::size_t(stack.back())];
        stack.pop_back();
        if (n.bounds.intersect(ray, ray.tmax) == kNoHit)
            continue;
        if (!n.isLeaf()) {
            stack.push_back(n.left);
            stack.push_back(n.right);
            continue;
        }
        const Instance &inst = instances_[n.instance];
        const Blas &b = *blas_[inst.blas];
        const Ray obj = inst.to_world.inverse().ray(ray);
        if (bvh::anyHit(b.flat, b.mesh, obj))
            return true;
    }
    return false;
}

} // namespace cooprt::bvh

/**
 * @file
 * The whole-GPU timing simulator: an array of SMs over a shared
 * memory hierarchy, with the global idle-skipping event loop and the
 * activity sampling the paper's figures are built from.
 */

#ifndef COOPRT_GPU_GPU_HPP
#define COOPRT_GPU_GPU_HPP

#include <memory>
#include <vector>

#include "gpu/sm.hpp"
#include "mem/memory_system.hpp"
#include "memscope/memscope.hpp"
#include "prof/prof.hpp"
#include "raytrace/raytrace.hpp"
#include "stats/sampler.hpp"
#include "trace/session.hpp"

namespace cooprt::telemetry {
class Recorder;
} // namespace cooprt::telemetry

namespace cooprt::gpu {

/** Everything a simulation run reports. */
struct GpuRunResult
{
    std::uint64_t cycles = 0;

    rtunit::RtUnitStats rt;        ///< aggregated over all RT units
    mem::CacheStats l1;            ///< aggregated over all L1s
    mem::CacheStats l2;
    mem::DramStats dram;
    mem::MemSystemStats mem_sys;
    StallBreakdown stalls;

    /** Average busy-thread ratio in the RT units (Fig. 10). */
    double avg_thread_utilization = 0.0;
    /** Busy-thread ratio time series, one per sample (Fig. 2). */
    std::vector<double> utilization_series;

    /**
     * Stall-attribution roll-up (zero / disabled unless a
     * `cooprt::prof::Profiler` was attached via setProf). Supersedes
     * the old sampled thread-status accumulator: `prof_summary.threads`
     * is the exact per-cycle Fig.-4 distribution.
     */
    cooprt::prof::Summary prof_summary;

    /** Per-warp completion records; max latency drives Fig. 14. */
    std::vector<WarpCompletion> completions;

    /**
     * Ray-provenance roll-up (disabled unless a
     * `cooprt::raytrace::Recorder` was attached via setRayTrace):
     * recorder totals plus the per-SM critical-path attribution of
     * each SM's slowest sampled warp.
     */
    cooprt::raytrace::Summary ray_summary;

    /**
     * Memory & BVH-topology attribution roll-up (disabled unless a
     * `cooprt::memscope::Collector` was attached via setMemscope):
     * node-heatmap totals, per-depth hit/miss/divergence rows, the
     * interconnect traffic tallies and reuse-distance summaries.
     */
    cooprt::memscope::Summary memscope_summary;

    /** Observability collection totals (zero when tracing is off). */
    cooprt::trace::RunTraceSummary trace_summary;

    std::uint64_t slowestWarpLatency() const;
    /** DRAM bandwidth utilization in [0,1] (Section 7.4). */
    double dram_utilization = 0.0;
    /** L2<->interconnect bytes per cycle (Fig. 12). */
    double l2BytesPerCycle() const
    { return cycles ? double(mem_sys.l2_bytes) / double(cycles) : 0.0; }
    /** DRAM bytes per cycle (Fig. 12). */
    double dramBytesPerCycle() const
    { return cycles ? double(dram.bytes) / double(cycles) : 0.0; }
};

/**
 * The GPU. Construct once per (scene BVH, config); `run()` executes
 * one frame's warps to completion and reports the statistics.
 */
class Gpu
{
  public:
    Gpu(const bvh::FlatBvh &bvh, const scene::Mesh &mesh,
        const GpuConfig &config);
    ~Gpu();

    Gpu(const Gpu &) = delete;
    Gpu &operator=(const Gpu &) = delete;

    const GpuConfig &config() const { return cfg_; }

    /**
     * Attach an observability session for subsequent run() calls
     * (null = tracing off, the default). The memory hierarchy, SMs
     * and RT units register their counters into the session registry
     * under hierarchical names (`rtunit.sm0.*`, `mem.l2.*`, ...);
     * when the session has event tracing / metrics sampling enabled,
     * runs emit Chrome-trace events and periodic registry snapshots.
     * The session must outlive this Gpu. Purely observational:
     * reported cycle counts are identical with and without it.
     */
    void setTrace(cooprt::trace::Session *session)
    { session_ = session; }

    /**
     * Attach a stall-attribution profiler for subsequent run() calls
     * (null = profiling off, the default). Each run resets the
     * profiler, wires one `RtUnitProfile` per SM and attributes
     * response-starved cycles to the memory level that served the
     * fetch. When a trace session is also attached, the `prof.*`
     * bucket probes join its metrics registry (CSV columns). Purely
     * observational: simulated cycle counts are bit-identical with
     * and without it. The profiler must outlive this Gpu.
     */
    void setProf(cooprt::prof::Profiler *profiler)
    { prof_ = profiler; }

    /**
     * Attach a ray-level provenance recorder for subsequent run()
     * calls (null = recording off, the default). Each run resets the
     * recorder, wires one `raytrace::UnitRecorder` per SM, and the
     * RT units log the lifecycle events of the rays the recorder's
     * deterministic sampler selects. When a trace session is also
     * attached, sampled rays get their own Perfetto tracks and the
     * `ray.*` probes join the metrics registry. Purely observational:
     * simulated cycle counts are bit-identical with and without it.
     * The recorder must outlive this Gpu.
     */
    void setRayTrace(cooprt::raytrace::Recorder *recorder)
    { ray_ = recorder; }

    /**
     * Attach a memory & BVH-topology profiler for subsequent run()
     * calls (null = profiling off, the default). Each run resets the
     * collector, wires one `memscope::UnitScope` per SM and the
     * cache/DRAM scopes into the memory hierarchy, and tags every
     * node fetch with its node id, tree depth and serving level. When
     * a trace session is also attached, the `memscope.*` probes join
     * the metrics registry and Perfetto gets memscope counter tracks.
     * Purely observational: simulated cycle counts are bit-identical
     * with and without it. The collector must outlive this Gpu.
     */
    void setMemscope(cooprt::memscope::Collector *collector)
    { mscope_ = collector; }

    /**
     * Attach a host-side telemetry recorder for subsequent run()
     * calls (null = telemetry off, the default). The run publishes
     * live simulated progress (cycle, retired trace_rays warps) at
     * activity-sampling boundaries so campaign heartbeats can read
     * it, and registers the deterministic `telemetry.*` probes when a
     * trace session is also attached. Purely observational: simulated
     * cycle counts are bit-identical with and without it. The
     * recorder must outlive this Gpu.
     */
    void setTelemetry(cooprt::telemetry::Recorder *recorder)
    { telem_ = recorder; }

    /**
     * Run @p programs (one per warp / thread block) to completion.
     * Thread blocks are assigned to SMs round-robin, as the
     * Gigathread engine does. The Gpu instance can be reused; state
     * is reset at the start of each run.
     *
     * @param timeline Optional Fig.-11 recorder armed on SM 0's RT
     *                 unit (records the first warp it sees).
     */
    /**
     * @param warm_memory Keep cache/DRAM state from the previous
     *        run() (used by multi-pass schedulers like per-bounce
     *        compaction, where the machine is not actually reset
     *        between passes). Statistics still restart.
     */
    GpuRunResult run(const std::vector<WarpProgram *> &programs,
                     stats::TimelineRecorder *timeline = nullptr,
                     int timeline_skip = 0, bool warm_memory = false);

  private:
    void sampleActivity(std::uint64_t cycle);

    const bvh::FlatBvh &bvh_;
    const scene::Mesh &mesh_;
    GpuConfig cfg_;
    mem::MemorySystem memsys_;
    std::vector<std::unique_ptr<StreamingMultiprocessor>> sms_;
    stats::ActivitySampler sampler_;

    cooprt::trace::Session *session_ = nullptr;
    cooprt::prof::Profiler *prof_ = nullptr;
    cooprt::raytrace::Recorder *ray_ = nullptr;
    cooprt::memscope::Collector *mscope_ = nullptr;
    cooprt::telemetry::Recorder *telem_ = nullptr;
    /** Busy-thread ratio at the latest sample (metrics probe src). */
    double util_now_ = 0.0;
};

} // namespace cooprt::gpu

#endif // COOPRT_GPU_GPU_HPP

#include "gpu/gpu.hpp"

#include <cassert>
#include <stdexcept>

#include "telemetry/telemetry.hpp"

namespace cooprt::gpu {

std::uint64_t
GpuRunResult::slowestWarpLatency() const
{
    std::uint64_t worst = 0;
    for (const auto &c : completions)
        if (c.latency() > worst)
            worst = c.latency();
    return worst;
}

Gpu::Gpu(const bvh::FlatBvh &bvh, const scene::Mesh &mesh,
         const GpuConfig &config)
    : bvh_(bvh), mesh_(mesh), cfg_(config), memsys_(config.mem),
      sampler_(config.sample_interval)
{
    if (cfg_.num_sms != cfg_.mem.num_sms)
        throw std::invalid_argument(
            "GpuConfig.num_sms must match mem.num_sms");
}

Gpu::~Gpu()
{
    if (session_ != nullptr)
        session_->registry().unregisterOwner(this);
}

void
Gpu::sampleActivity(std::uint64_t cycle)
{
    cooprt::trace::Tracer *tracer =
        session_ != nullptr ? session_->tracer() : nullptr;
    cooprt::trace::MetricsSampler *metrics =
        session_ != nullptr ? session_->metrics() : nullptr;

    if (telem_ != nullptr) {
        // Live progress for campaign heartbeats: simulated values
        // only, published on the same deterministic boundaries as
        // the activity sampler (reads never perturb the run).
        std::uint64_t retired = 0;
        for (const auto &sm : sms_)
            retired += sm->rtUnit().stats().retired_warps;
        telem_->publishProgress(cycle, retired);
    }

    rtunit::ThreadStatusCounts total;
    for (std::size_t i = 0; i < sms_.size(); ++i) {
        const auto c = sms_[i]->rtUnit().threadStatus();
        total.inactive += c.inactive;
        total.busy += c.busy;
        total.waiting += c.waiting;
        if (tracer != nullptr && c.total() != 0) {
            COOPRT_TRACE_COUNTER(tracer, "rtunit", "busy_threads",
                                 int(i), cycle, double(c.busy));
            COOPRT_TRACE_COUNTER(tracer, "rtunit", "waiting_threads",
                                 int(i), cycle, double(c.waiting));
        }
    }
    if (total.total() == 0) {
        sampler_.skip(cycle); // nothing resident; no empty samples
        if (metrics != nullptr)
            metrics->skip(cycle);
        return;
    }
    sampler_.sample(cycle, total.busy, total.total());

    // The registry snapshot rides the very same boundaries as the
    // activity sampler, so the exported `rtunit.thread_utilization`
    // CSV column reproduces ActivitySampler::series() exactly.
    util_now_ = double(total.busy) / double(total.total());
    if (metrics != nullptr)
        metrics->sample(cycle);
    COOPRT_TRACE_COUNTER(tracer, "rtunit", "thread_utilization",
                         cfg_.num_sms, cycle, util_now_);
    if (mscope_ != nullptr && tracer != nullptr) {
        // Memscope counter tracks: cumulative node-fetch traffic and
        // its serving-level split, sampled on the same boundaries.
        const memscope::NodeCounters t = mscope_->nodeTotals();
        COOPRT_TRACE_COUNTER(tracer, "memscope", "node_bytes",
                             cfg_.num_sms, cycle, double(t.bytes));
        COOPRT_TRACE_COUNTER(tracer, "memscope", "fetches_l1",
                             cfg_.num_sms, cycle, double(t.level[0]));
        COOPRT_TRACE_COUNTER(tracer, "memscope", "fetches_l2",
                             cfg_.num_sms, cycle, double(t.level[1]));
        COOPRT_TRACE_COUNTER(tracer, "memscope", "fetches_dram",
                             cfg_.num_sms, cycle, double(t.level[2]));
    }
}

GpuRunResult
Gpu::run(const std::vector<WarpProgram *> &programs,
         stats::TimelineRecorder *timeline, int timeline_skip,
         bool warm_memory)
{
    // Fresh machine state per run (optionally keeping cache contents
    // warm; timing/statistics always restart with the clock).
    if (warm_memory)
        memsys_.resetTiming();
    else
        memsys_.reset();
    sampler_.reset();
    sms_.clear();
    for (int i = 0; i < cfg_.num_sms; ++i) {
        sms_.push_back(std::make_unique<StreamingMultiprocessor>(
            i, cfg_, bvh_, mesh_,
            [this, i](std::uint64_t addr, std::uint32_t bytes,
                      std::uint64_t now) {
                return memsys_.fetch(i, addr, bytes, now);
            }));
    }
    if (prof_ != nullptr) {
        prof_->reset();
        // The level callback attributes a response-starved cycle to
        // the hierarchy level that served the fetch; it is read right
        // after issue, while MemorySystem::lastFetchDepth() still
        // refers to this fetch.
        for (std::size_t i = 0; i < sms_.size(); ++i)
            sms_[i]->attachProf(&prof_->unit(int(i)), [this] {
                return cooprt::prof::MemLevel(
                    memsys_.lastFetchDepth());
            });
    }
    if (ray_ != nullptr) {
        ray_->reset();
        // Same serving-level contract as the profiler callback above;
        // when both are attached the profiler's value is reused, so
        // attaching the recorder never perturbs prof attribution.
        for (std::size_t i = 0; i < sms_.size(); ++i)
            sms_[i]->attachRayTrace(&ray_->unit(int(i)), [this] {
                return cooprt::prof::MemLevel(
                    memsys_.lastFetchDepth());
            });
    }
    if (mscope_ != nullptr) {
        mscope_->reset();
        // The unit scopes tag node fetches in the RT units; the cache
        // and DRAM scopes hook the hierarchy at its fetch choke point
        // (where the conservation identity is audited in check
        // builds). Same serving-level contract as the profiler.
        memsys_.attachMemscope(mscope_);
        for (std::size_t i = 0; i < sms_.size(); ++i)
            sms_[i]->attachMemscope(&mscope_->unit(int(i)), [this] {
                return cooprt::prof::MemLevel(
                    memsys_.lastFetchDepth());
            });
    } else {
        memsys_.attachMemscope(nullptr); // may be set from a prior run
    }
    if (session_ != nullptr) {
        // Each run restarts the session's collected data; component
        // registrations are idempotent (overwrite by name).
        session_->resetData();
        if (prof_ != nullptr)
            prof_->registerMetrics(session_->registry());
        if (ray_ != nullptr)
            ray_->registerMetrics(session_->registry());
        if (mscope_ != nullptr)
            mscope_->registerMetrics(session_->registry());
        if (telem_ != nullptr)
            telem_->registerMetrics(session_->registry());
        memsys_.registerMetrics(session_->registry());
        session_->registry().probe(
            "rtunit.thread_utilization",
            [this] { return util_now_; }, this);
        for (auto &sm : sms_)
            sm->attachTrace(session_);
        if (session_->tracer() != nullptr)
            session_->tracer()->processName(cfg_.num_sms, "GPU");
    }
    if (timeline != nullptr)
        sms_[0]->rtUnit().armTimeline(timeline, timeline_skip);
    // One GPU-wide intersection-predictor table (see RtUnit docs).
    for (std::size_t i = 1; i < sms_.size(); ++i)
        sms_[i]->rtUnit().sharePredictor(sms_[0]->rtUnit());

    // Gigathread engine: thread blocks round-robin over SMs.
    for (std::size_t w = 0; w < programs.size(); ++w)
        sms_[w % sms_.size()]->assign(int(w), programs[w]);

    // Event-driven main loop with cached per-SM next-event times.
    // An SM's state only changes when it ticks (memory completion
    // times are computed at issue), so a non-ticked SM's cached next
    // event stays valid.
    std::uint64_t now = 0;
    std::vector<std::uint64_t> next_event(sms_.size());
    for (std::size_t i = 0; i < sms_.size(); ++i)
        next_event[i] = sms_[i]->nextEventCycle(0);

    while (true) {
        std::uint64_t next = rtunit::kNever;
        for (const std::uint64_t e : next_event)
            if (e < next)
                next = e;
        if (next == rtunit::kNever)
            break; // all SMs drained

        // Emit one activity sample per boundary crossed before the
        // next event; RT-unit state is constant between ticks, so
        // sampling the current state at each boundary is exact.
        while (sampler_.nextDue() <= next)
            sampleActivity(sampler_.nextDue());
        now = next;

        for (std::size_t i = 0; i < sms_.size(); ++i) {
            if (next_event[i] > now)
                continue;
            sms_[i]->tick(now);
            next_event[i] = sms_[i]->nextEventCycle(now + 1);
        }
        now += 1;
    }

    GpuRunResult res;
    res.cycles = now;
    for (const auto &sm : sms_) {
        const auto &rs = sm->rtUnit().stats();
        res.rt.node_fetches += rs.node_fetches;
        res.rt.leaf_fetches += rs.leaf_fetches;
        res.rt.box_tests += rs.box_tests;
        res.rt.tri_tests += rs.tri_tests;
        res.rt.steals += rs.steals;
        res.rt.coalesced_threads += rs.coalesced_threads;
        res.rt.stale_pops += rs.stale_pops;
        res.rt.stack_overflows += rs.stack_overflows;
        res.rt.retired_warps += rs.retired_warps;
        res.rt.retired_trace_latency += rs.retired_trace_latency;
        res.rt.issue_cycles += rs.issue_cycles;
        res.rt.prefetches += rs.prefetches;
        res.rt.predictor_hits += rs.predictor_hits;
        res.rt.predictor_misses += rs.predictor_misses;
        res.rt.hit_stores += rs.hit_stores;
        if (rs.max_trace_latency > res.rt.max_trace_latency)
            res.rt.max_trace_latency = rs.max_trace_latency;

        res.stalls.rt += sm->stalls().rt;
        res.stalls.mem += sm->stalls().mem;
        res.stalls.alu += sm->stalls().alu;
        res.stalls.sfu += sm->stalls().sfu;

        for (const auto &c : sm->completions())
            res.completions.push_back(c);
    }

#if COOPRT_CHECK_ENABLED
    // Aggregate re-summation: the reporting loop above must not drop
    // an SM or double-count an RT-unit counter. Recompute the totals
    // independently and pin them against the published aggregate.
    {
        rtunit::RtUnitStats audit_rt;
        for (const auto &sm : sms_) {
            const auto &rs = sm->rtUnit().stats();
            audit_rt.node_fetches += rs.node_fetches;
            audit_rt.leaf_fetches += rs.leaf_fetches;
            audit_rt.box_tests += rs.box_tests;
            audit_rt.tri_tests += rs.tri_tests;
            audit_rt.steals += rs.steals;
            audit_rt.coalesced_threads += rs.coalesced_threads;
            audit_rt.stale_pops += rs.stale_pops;
            audit_rt.stack_overflows += rs.stack_overflows;
            audit_rt.issue_cycles += rs.issue_cycles;
            audit_rt.prefetches += rs.prefetches;
            audit_rt.predictor_hits += rs.predictor_hits;
            audit_rt.predictor_misses += rs.predictor_misses;
            audit_rt.hit_stores += rs.hit_stores;
        }
        COOPRT_AUDIT("gpu", "gpu.rt_stats_aggregation", now,
                     audit_rt.node_fetches == res.rt.node_fetches &&
                         audit_rt.leaf_fetches == res.rt.leaf_fetches &&
                         audit_rt.box_tests == res.rt.box_tests &&
                         audit_rt.tri_tests == res.rt.tri_tests &&
                         audit_rt.steals == res.rt.steals &&
                         audit_rt.coalesced_threads ==
                             res.rt.coalesced_threads &&
                         audit_rt.stale_pops == res.rt.stale_pops &&
                         audit_rt.stack_overflows ==
                             res.rt.stack_overflows &&
                         audit_rt.issue_cycles == res.rt.issue_cycles &&
                         audit_rt.prefetches == res.rt.prefetches &&
                         audit_rt.predictor_hits ==
                             res.rt.predictor_hits &&
                         audit_rt.predictor_misses ==
                             res.rt.predictor_misses &&
                         audit_rt.hit_stores == res.rt.hit_stores,
                     "per-SM RT-unit counters must re-sum to the "
                     "published aggregate");
    }

    // End-of-run conservation: the event loop only exits when every
    // SM drained, so every launched warp must have a completion
    // record with a sane lifetime.
    COOPRT_AUDIT("gpu", "gpu.warp_conservation", now,
                 res.completions.size() == programs.size(),
                 std::to_string(programs.size()) +
                     " warps launched but " +
                     std::to_string(res.completions.size()) +
                     " completed");
    for (const auto &c : res.completions)
        COOPRT_AUDIT("gpu", "gpu.completion_time_sane", now,
                     c.start_cycle <= c.finish_cycle &&
                         c.finish_cycle <= now,
                     "warp " + std::to_string(c.warp_id) + " [" +
                         std::to_string(c.start_cycle) + ", " +
                         std::to_string(c.finish_cycle) +
                         "] vs end cycle " + std::to_string(now));
#endif

    res.l1 = memsys_.l1StatsTotal();
    res.l2 = memsys_.l2Stats();
    res.dram = memsys_.dramStats();
    res.mem_sys = memsys_.stats();
    res.avg_thread_utilization = sampler_.averageRatio();
    res.utilization_series = sampler_.series();
    if (prof_ != nullptr) {
        res.prof_summary.enabled = true;
        res.prof_summary.buckets = prof_->totals();
        res.prof_summary.resident_cycles = prof_->residentCycles();
        res.prof_summary.threads = prof_->threadStatus();
    }
    if (ray_ != nullptr) {
        if (session_ != nullptr && session_->tracer() != nullptr)
            ray_->emitPerfetto(*session_->tracer());
        res.ray_summary = ray_->summary();
    }
    if (mscope_ != nullptr)
        res.memscope_summary = mscope_->summary();
    if (session_ != nullptr)
        res.trace_summary = session_->summary();
    res.dram_utilization =
        res.dram.utilization(res.cycles, memsys_.dramChannels());
    return res;
}

} // namespace cooprt::gpu

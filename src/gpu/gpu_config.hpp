/**
 * @file
 * Whole-GPU configuration (paper Table 1) and the derived bench-scale
 * variants.
 */

#ifndef COOPRT_GPU_GPU_CONFIG_HPP
#define COOPRT_GPU_GPU_CONFIG_HPP

#include <cstdint>

#include "mem/memory_system.hpp"
#include "rtunit/trace_config.hpp"

namespace cooprt::gpu {

/** Per-warp stall attribution classes (paper Fig. 1). */
struct StallBreakdown
{
    std::uint64_t rt = 0;   ///< trace_ray latency + warp-buffer waits
    std::uint64_t mem = 0;  ///< CUDA-core load/store latency
    std::uint64_t alu = 0;  ///< arithmetic latency
    std::uint64_t sfu = 0;  ///< special-function latency

    std::uint64_t total() const { return rt + mem + alu + sfu; }
};

/** Full GPU configuration. */
struct GpuConfig
{
    int num_sms = 30;
    /** Max resident thread blocks (1 warp each) per SM (Table 1: 32). */
    int max_warps_per_sm = 32;

    mem::MemConfig mem;
    rtunit::TraceConfig trace;

    /** Per-instruction latencies of the SM shading pipeline model. */
    std::uint32_t alu_latency = 2;
    std::uint32_t sfu_latency = 8;
    std::uint32_t mem_latency = 30;

    /** Activity sampling interval (paper: 500 cycles). */
    std::uint64_t sample_interval = 500;

    /**
     * The paper's Table 1 configuration (SM75_RTX2060): 30 SMs,
     * 64 KB fully associative L1 (20 cyc), 3 MB 16-way L2 (160 cyc),
     * 6 DRAM channels, 4-entry RT warp buffer.
     */
    static GpuConfig
    rtx2060()
    {
        GpuConfig c;
        c.num_sms = 30;
        c.mem.num_sms = 30;
        c.mem.l1 = {64 * 1024, 0, 128, 20};
        c.mem.l2 = {3 * 1024 * 1024, 16, 128, 160};
        c.mem.l2_banks = 12;
        c.mem.l2_bytes_per_cycle = 32.0;
        c.mem.dram.channels = 6;
        c.mem.dram.latency = 350; // effective (loaded) GDDR6 latency
        c.mem.dram.bytes_per_cycle = 41.0;
        return c;
    }

    /**
     * Bench-scale desktop configuration: the rtx2060 scaled to one
     * third of the SMs with the L2 capacity and DRAM bandwidth scaled
     * by the same factor, preserving the per-SM compute : memory
     * ratio. Benches use this with 64x64 frames so the warps-per-SM
     * pressure matches the paper's 256x256 over 30 SMs.
     */
    static GpuConfig
    rtx2060Bench()
    {
        GpuConfig c = rtx2060();
        c.num_sms = 10;
        c.mem.num_sms = 10;
        c.mem.l2.size_bytes = 1024 * 1024;
        c.mem.l2_banks = 4;
        c.mem.dram.channels = 6;
        c.mem.dram.bytes_per_cycle = 41.0 / 3.0;
        return c;
    }

    /**
     * High-occupancy variant for the warp-buffer experiments
     * (Figs. 13-15): fewer SMs with the same per-SM memory ratios,
     * so each SM hosts ~18 warps at bench resolutions — enough
     * queue depth for the RT warp-buffer size to matter, as in the
     * paper's setup of 68 warps per SM.
     */
    static GpuConfig
    rtx2060HighOccupancy()
    {
        GpuConfig c = rtx2060();
        c.num_sms = 4;
        c.mem.num_sms = 4;
        c.mem.l2.size_bytes = 384 * 1024;
        c.mem.l2_banks = 2;
        c.mem.dram.channels = 6;
        c.mem.dram.bytes_per_cycle = 41.0 / 7.5;
        return c;
    }

    /**
     * The paper's mobile configuration (Section 7.4): 8 SMs and 4
     * memory channels — bench-scaled the same way as rtx2060Bench.
     */
    static GpuConfig
    mobileBench()
    {
        GpuConfig c = rtx2060();
        c.num_sms = 6;
        c.mem.num_sms = 6;
        c.mem.l2.size_bytes = 768 * 1024;
        c.mem.l2_banks = 2;
        c.mem.dram.channels = 4;
        // Mobile LPDDR: markedly less bandwidth per SM than the
        // desktop part — the paper's Section 7.4 bottleneck.
        c.mem.dram.bytes_per_cycle = 3.6;
        c.mem.dram.latency = 400;
        return c;
    }
};

} // namespace cooprt::gpu

#endif // COOPRT_GPU_GPU_CONFIG_HPP

/**
 * @file
 * The interface between shader workloads and the GPU timing model.
 *
 * A WarpProgram is the timing-level view of one warp executing a
 * raygen shader (paper Listing 1): an alternation of shading phases
 * (ALU/SFU/MEM instructions) and trace_ray instructions, ending when
 * every thread has exited the bounce loop.
 */

#ifndef COOPRT_GPU_WARP_PROGRAM_HPP
#define COOPRT_GPU_WARP_PROGRAM_HPP

#include "rtunit/rt_unit.hpp"

namespace cooprt::gpu {

/**
 * Instruction-class counts of one shading phase, used for the Fig. 1
 * stall attribution: ALU (arithmetic), SFU (special function: trig,
 * reciprocals in scatter sampling), MEM (loads/stores from CUDA
 * cores: hit attributes, frame buffer).
 */
struct ShadingCost
{
    int alu = 0;
    int sfu = 0;
    int mem = 0;
};

/** What a warp does next after a shading phase completes. */
struct WarpAction
{
    enum class Kind { Trace, Finish };

    Kind kind = Kind::Finish;
    /** The trace_ray instruction to issue (when kind == Trace). */
    rtunit::TraceJob trace;
    /** Shading work executed *before* this action. */
    ShadingCost cost;
};

/**
 * One warp's shader program, driven by the SM: `start()` yields the
 * first action (primary-ray setup + first trace_ray), and each
 * `resume(result)` consumes a retired trace_ray and yields the next.
 */
class WarpProgram
{
  public:
    virtual ~WarpProgram() = default;

    /** First action of the warp (ray-generation phase). */
    virtual WarpAction start() = 0;

    /**
     * Continue after a trace_ray retires with @p result. Returns the
     * next action (bounce processing + next trace, or Finish).
     */
    virtual WarpAction resume(const rtunit::TraceResult &result) = 0;
};

} // namespace cooprt::gpu

#endif // COOPRT_GPU_WARP_PROGRAM_HPP

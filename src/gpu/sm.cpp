#include "gpu/sm.hpp"

#include <cassert>

#include "raytrace/raytrace.hpp"

namespace cooprt::gpu {

StreamingMultiprocessor::StreamingMultiprocessor(
    int sm_id, const GpuConfig &cfg, const bvh::FlatBvh &bvh,
    const scene::Mesh &mesh, rtunit::RtUnit::FetchFn fetch)
    : sm_id_(sm_id), cfg_(cfg),
      rt_(bvh, mesh, cfg.trace, std::move(fetch))
{
    (void)sm_id_;
#if COOPRT_CHECK_ENABLED
    check_label_ = "sm" + std::to_string(sm_id_);
    rt_.setCheckLabel("rtunit.sm" + std::to_string(sm_id_));
#endif
}

void
StreamingMultiprocessor::assign(int warp_id, WarpProgram *program)
{
    pending_.emplace_back(warp_id, program);
    COOPRT_CHECK_ONLY(audit_assigned_++;)
}

void
StreamingMultiprocessor::attachTrace(cooprt::trace::Session *session)
{
    if (session == nullptr)
        return;
    tracer_ = session->tracer();
    rt_.attachTrace(&session->registry(), tracer_, sm_id_);
    if (tracer_ != nullptr)
        tracer_->processName(sm_id_,
                             "SM " + std::to_string(sm_id_));
}

void
StreamingMultiprocessor::attachProf(
    cooprt::prof::RtUnitProfile *profile,
    rtunit::RtUnit::ProfLevelFn level)
{
    prof_ = profile;
    rt_.attachProf(profile, std::move(level));
}

void
StreamingMultiprocessor::attachRayTrace(
    cooprt::raytrace::UnitRecorder *recorder,
    rtunit::RtUnit::ProfLevelFn level)
{
    ray_rec_ = recorder;
    rt_.attachRayTrace(recorder, std::move(level));
}

void
StreamingMultiprocessor::attachMemscope(
    cooprt::memscope::UnitScope *scope,
    rtunit::RtUnit::ProfLevelFn level)
{
    rt_.attachMemscope(scope, std::move(level));
}

bool
StreamingMultiprocessor::done() const
{
    return pending_.empty() && shading_.empty() && wait_slot_.empty() &&
           in_trace_ == 0;
}

std::uint64_t
StreamingMultiprocessor::shadingCycles(const ShadingCost &c) const
{
    return std::uint64_t(c.alu) * cfg_.alu_latency +
           std::uint64_t(c.sfu) * cfg_.sfu_latency +
           std::uint64_t(c.mem) * cfg_.mem_latency;
}

void
StreamingMultiprocessor::scheduleAction(std::unique_ptr<WarpCtx> ctx,
                                        WarpAction action,
                                        std::uint64_t now)
{
    // Attribute the shading phase to the per-class stall counters.
    stalls_.alu += std::uint64_t(action.cost.alu) * cfg_.alu_latency;
    stalls_.sfu += std::uint64_t(action.cost.sfu) * cfg_.sfu_latency;
    stalls_.mem += std::uint64_t(action.cost.mem) * cfg_.mem_latency;

    const std::uint64_t done_at = now + shadingCycles(action.cost);
    if (done_at > now)
        COOPRT_TRACE_COMPLETE(tracer_, "sm", "shade", sm_id_,
                              ctx->warp_id, now, done_at - now);
    ctx->action = std::move(action);
    ctx->shade_done = done_at;
    shading_.emplace(done_at, std::move(ctx));
}

void
StreamingMultiprocessor::admitPending(std::uint64_t now)
{
    while (!pending_.empty() &&
           resident_warps_ < cfg_.max_warps_per_sm) {
        auto [warp_id, program] = pending_.front();
        pending_.pop_front();
        resident_warps_++;

        auto ctx = std::make_unique<WarpCtx>();
        ctx->warp_id = warp_id;
        ctx->program = program;
        ctx->start_cycle = now;
        scheduleAction(std::move(ctx), program->start(), now);
    }
}

void
StreamingMultiprocessor::onRetire(std::unique_ptr<WarpCtx> ctx,
                                  const rtunit::TraceResult &result)
{
    // trace_ray latency is the RT stall class (the dominant one).
    stalls_.rt += result.latency();
    in_trace_--;
    if (COOPRT_MUTATE(LostWarp))
        return; // drop the retired warp on the floor

    COOPRT_TRACE_COMPLETE(tracer_, "rtunit", "trace_ray", sm_id_,
                          ctx->warp_id, result.issue_cycle,
                          result.latency());
    const std::uint64_t now = result.retire_cycle;
    WarpProgram *program = ctx->program;
    scheduleAction(std::move(ctx), program->resume(result), now);
}

void
StreamingMultiprocessor::submitReady(std::uint64_t now)
{
    while (!wait_slot_.empty() && rt_.freeSlots() > 0) {
        std::unique_ptr<WarpCtx> ctx = std::move(wait_slot_.front());
        wait_slot_.pop_front();
        // Waiting for a warp-buffer slot is an RT-class stall.
        stalls_.rt += now - ctx->wait_since;
        if (prof_ != nullptr)
            prof_->addWarpBufferFull(now - ctx->wait_since);
        if (now > ctx->wait_since)
            COOPRT_TRACE_COMPLETE(tracer_, "sm", "wait_warp_buffer",
                                  sm_id_, ctx->warp_id,
                                  ctx->wait_since,
                                  now - ctx->wait_since);

        in_trace_++;
        rtunit::TraceJob job = std::move(ctx->action.trace);
        const int warp_id = ctx->warp_id;
        // The retire callback owns the context until the RT unit
        // finishes the trace.
        auto *raw = ctx.release();
        const int slot = rt_.submit(
            job, now,
            [this, raw](int, const rtunit::TraceResult &res) {
                onRetire(std::unique_ptr<WarpCtx>(raw), res);
            });
        // Post-submit (the record survives an instant retire): name
        // the provenance record after the GPU-wide warp id.
        if (ray_rec_ != nullptr)
            ray_rec_->setWarpId(slot, warp_id);
    }
}

void
StreamingMultiprocessor::tick(std::uint64_t now)
{
    admitPending(now);

    // Shading phases that completed by now either issue their trace
    // or finish the warp.
    while (!shading_.empty() && shading_.begin()->first <= now) {
        std::unique_ptr<WarpCtx> ctx =
            std::move(shading_.begin()->second);
        shading_.erase(shading_.begin());
        if (ctx->action.kind == WarpAction::Kind::Finish) {
            completions_.push_back(
                {ctx->warp_id, ctx->start_cycle, now});
            COOPRT_TRACE_COMPLETE(tracer_, "sm", "warp", sm_id_,
                                  ctx->warp_id, ctx->start_cycle,
                                  now - ctx->start_cycle);
            resident_warps_--;
            admitPending(now); // a residency slot opened
            continue;
        }
        ctx->wait_since = now;
        wait_slot_.push_back(std::move(ctx));
    }

    submitReady(now);
    rt_.tick(now); // may retire warps -> onRetire -> new shading
    // Retires during this tick may have freed warp-buffer slots.
    submitReady(now);
#if COOPRT_CHECK_ENABLED
    auditInvariants(now);
#endif
}

#if COOPRT_CHECK_ENABLED
void
StreamingMultiprocessor::auditInvariants(std::uint64_t now) const
{
    // Every warp ever assigned is queued, shading, waiting for a
    // warp-buffer slot, tracing, or completed — nothing vanishes.
    const std::uint64_t accounted =
        pending_.size() + shading_.size() + wait_slot_.size() +
        std::uint64_t(in_trace_) + completions_.size();
    COOPRT_AUDIT(check_label_, "sm.warp_conservation", now,
                 audit_assigned_ == accounted,
                 "assigned=" + std::to_string(audit_assigned_) +
                     " pending=" + std::to_string(pending_.size()) +
                     " shading=" + std::to_string(shading_.size()) +
                     " wait_slot=" +
                     std::to_string(wait_slot_.size()) +
                     " in_trace=" + std::to_string(in_trace_) +
                     " completed=" +
                     std::to_string(completions_.size()));
    COOPRT_AUDIT(check_label_, "sm.resident_ledger", now,
                 std::uint64_t(resident_warps_) ==
                     shading_.size() + wait_slot_.size() +
                         std::uint64_t(in_trace_),
                 "resident=" + std::to_string(resident_warps_) +
                     " shading=" + std::to_string(shading_.size()) +
                     " wait_slot=" +
                     std::to_string(wait_slot_.size()) +
                     " in_trace=" + std::to_string(in_trace_));
}
#endif // COOPRT_CHECK_ENABLED

std::uint64_t
StreamingMultiprocessor::nextEventCycle(std::uint64_t now) const
{
    std::uint64_t next = rtunit::kNever;

    if (!pending_.empty() && resident_warps_ < cfg_.max_warps_per_sm)
        return now;
    if (!wait_slot_.empty() && rt_.freeSlots() > 0)
        return now;
    if (!shading_.empty()) {
        const std::uint64_t s = shading_.begin()->first;
        next = s > now ? s : now;
    }
    const std::uint64_t r = rt_.nextEventCycle(now);
    if (r < next)
        next = r;
    return next;
}

} // namespace cooprt::gpu

/**
 * @file
 * One Streaming Multiprocessor: resident warps alternating between a
 * shading-pipeline latency model and trace_ray execution in the SM's
 * RT unit.
 */

#ifndef COOPRT_GPU_SM_HPP
#define COOPRT_GPU_SM_HPP

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "gpu/gpu_config.hpp"
#include "gpu/warp_program.hpp"
#include "rtunit/rt_unit.hpp"
#include "trace/session.hpp"

namespace cooprt::gpu {

/** Per-warp completion record (drives Fig. 14). */
struct WarpCompletion
{
    int warp_id = 0;
    std::uint64_t start_cycle = 0;
    std::uint64_t finish_cycle = 0;

    std::uint64_t latency() const { return finish_cycle - start_cycle; }
};

/**
 * A Streaming Multiprocessor. Owns one RT unit (Table 1) and hosts up
 * to `max_warps_per_sm` resident warps; further assigned warps wait
 * for a residency slot, as thread blocks do on real hardware.
 */
class StreamingMultiprocessor
{
  public:
    StreamingMultiprocessor(int sm_id, const GpuConfig &cfg,
                            const bvh::FlatBvh &bvh,
                            const scene::Mesh &mesh,
                            rtunit::RtUnit::FetchFn fetch);

    /** Assign a warp (thread block) to this SM. */
    void assign(int warp_id, WarpProgram *program);

    /**
     * Attach an observability session: registers this SM's RT unit
     * into the session registry (under `rtunit.sm<id>.*`) and, when
     * event tracing is on, names this SM's Perfetto track group and
     * starts emitting per-warp duration events (shading phases,
     * warp-buffer waits, trace_rays, whole-warp lifetimes) with
     * pid = SM id and tid = warp id. Null detaches nothing and is a
     * no-op; call before the first tick.
     */
    void attachTrace(cooprt::trace::Session *session);

    /**
     * Attach the stall-attribution profiler: the RT unit classifies
     * every warp-resident cycle into @p profile, and this SM adds
     * the warp-buffer-full wait cycles (trace issued, no free slot)
     * it measures at submit time. @p level attributes
     * response-starved cycles to their serving memory level. Null
     * profile disables profiling (the default; bit-identical runs).
     */
    void attachProf(cooprt::prof::RtUnitProfile *profile,
                    rtunit::RtUnit::ProfLevelFn level);

    /**
     * Attach the ray-level provenance recorder: the RT unit logs the
     * lifecycle events of sampled rays and this SM associates each
     * submitted warp's GPU-wide id with its record (so Perfetto ray
     * tracks and the critical-path report name real warps). Null
     * detaches; behaviour is bit-identical without a recorder.
     */
    void attachRayTrace(cooprt::raytrace::UnitRecorder *recorder,
                        rtunit::RtUnit::ProfLevelFn level);

    /**
     * Attach the BVH-topology profiler: the RT unit tags every node
     * fetch into @p scope with node id, depth and the serving level
     * read through @p level. Null detaches; behaviour is
     * bit-identical without it.
     */
    void attachMemscope(cooprt::memscope::UnitScope *scope,
                        rtunit::RtUnit::ProfLevelFn level);

    /** True when every assigned warp has finished. */
    bool done() const;

    /** Earliest cycle at which tick() can make progress. */
    std::uint64_t nextEventCycle(std::uint64_t now) const;

    /** Advance the SM at cycle @p now (non-decreasing). */
    void tick(std::uint64_t now);

    const rtunit::RtUnit &rtUnit() const { return rt_; }
    rtunit::RtUnit &rtUnit() { return rt_; }
    const StallBreakdown &stalls() const { return stalls_; }
    const std::vector<WarpCompletion> &completions() const
    { return completions_; }

  private:
    /** A resident warp's bookkeeping. */
    struct WarpCtx
    {
        int warp_id = 0;
        WarpProgram *program = nullptr;
        std::uint64_t start_cycle = 0;
        /** Cycle the current shading phase completes. */
        std::uint64_t shade_done = 0;
        /** Action produced by the program, applied after shading. */
        WarpAction action;
        /** Cycle the warp began waiting for a warp-buffer slot. */
        std::uint64_t wait_since = 0;
    };

    std::uint64_t shadingCycles(const ShadingCost &c) const;
    void scheduleAction(std::unique_ptr<WarpCtx> ctx, WarpAction action,
                        std::uint64_t now);
    void admitPending(std::uint64_t now);
    void submitReady(std::uint64_t now);
    void onRetire(std::unique_ptr<WarpCtx> ctx,
                  const rtunit::TraceResult &result);

    int sm_id_;
    const GpuConfig &cfg_;
    rtunit::RtUnit rt_;
    StallBreakdown stalls_;
    cooprt::trace::Tracer *tracer_ = nullptr;
    cooprt::prof::RtUnitProfile *prof_ = nullptr;
    cooprt::raytrace::UnitRecorder *ray_rec_ = nullptr;

    /** Warps assigned but not yet resident. */
    std::deque<std::pair<int, WarpProgram *>> pending_;
    int resident_warps_ = 0;

    /** Shading phases in flight, keyed by completion cycle. */
    std::multimap<std::uint64_t, std::unique_ptr<WarpCtx>> shading_;

    /** Warps whose trace job waits for a free warp-buffer slot. */
    std::deque<std::unique_ptr<WarpCtx>> wait_slot_;

    std::vector<WarpCompletion> completions_;
    /** Warps currently inside the RT unit (for done()). */
    int in_trace_ = 0;
    std::uint64_t retire_bonus_events_ = 0;

#if COOPRT_CHECK_ENABLED
    /** End-of-tick conservation audits (DESIGN.md catalogue). */
    void auditInvariants(std::uint64_t now) const;

    std::string check_label_ = "sm";
    /** Warps ever assigned, for sm.warp_conservation. */
    std::uint64_t audit_assigned_ = 0;
#endif
};

} // namespace cooprt::gpu

#endif // COOPRT_GPU_SM_HPP

/**
 * @file
 * Gate-level area model of the CoopRT hardware additions (paper
 * Section 7.5 / Table 3), calibrated to the paper's FreePDK45 +
 * Synopsys Design Compiler synthesis results.
 *
 * Structure of the added logic (Figs. 7-8):
 *  - per-thread structures that do NOT scale with the subwarp size
 *    (TOS registers, stack write muxes, min_thit compare-and-update):
 *    the large fixed term;
 *  - pairing logic that scales with the helper scope: two priority
 *    encoders per subwarp plus the main-TOS select mux and the
 *    min_thit OR-reduction — with 32/N subwarps of N threads this
 *    totals Theta(32 * log2 N) cells, the term that shrinks when the
 *    subwarp is restricted;
 *  - extra warp-buffer fields: a 5-bit main_tid and a stack-empty
 *    flag per thread.
 */

#ifndef COOPRT_POWER_AREA_MODEL_HPP
#define COOPRT_POWER_AREA_MODEL_HPP

#include <cstdint>

namespace cooprt::power {

/** Synthesized-area estimate for one CoopRT configuration. */
struct AreaReport
{
    std::uint64_t cells = 0;   ///< combinational cell count
    double area_um2 = 0.0;     ///< cell area, square microns

    /** Equivalent D-flip-flop count (paper: 6 um^2 per FF). */
    double ffEquivalent() const { return area_um2 / 6.0; }
};

/**
 * Area model of the CoopRT additions.
 */
class AreaModel
{
  public:
    /** Warp size (fixed by the architecture). */
    static constexpr int kWarpSize = 32;
    /** FreePDK45 D-flip-flop area (paper: 6 um^2). */
    static constexpr double kFlipFlopUm2 = 6.0;
    /** Bits per thread in the baseline warp buffer (paper: 768). */
    static constexpr int kWarpBufferBitsPerThread = 768;
    /** Extra CoopRT warp-buffer bits per thread: 5-bit main_tid +
     *  1-bit stack-empty flag. */
    static constexpr int kExtraBitsPerThread = 6;

    /**
     * Combinational area of the CoopRT logic for a given subwarp
     * size (4, 8, 16 or 32). Calibrated to Table 3: the fixed
     * per-thread term plus ~318 cells (~431 um^2) per doubling of
     * the subwarp scope.
     */
    static AreaReport
    coopLogic(int subwarp_size)
    {
        const double lg = log2i(subwarp_size);
        AreaReport r;
        r.cells =
            std::uint64_t(kFixedCells + kCellsPerLog2 * lg + 0.5);
        r.area_um2 = kFixedUm2 + kUm2PerLog2 * lg;
        return r;
    }

    /**
     * Baseline warp-buffer storage in bits: RayProperties +
     * TraversalStack + min_thit at 768 bits per thread (paper
     * assumes a 16-entry traversal stack).
     */
    static std::uint64_t
    warpBufferBits(int entries = 4)
    {
        return std::uint64_t(entries) * kWarpSize *
               kWarpBufferBitsPerThread;
    }

    /** Storage of one additional warp-buffer entry, in bits. */
    static std::uint64_t
    warpBufferEntryBits()
    {
        return std::uint64_t(kWarpSize) * kWarpBufferBitsPerThread;
    }

    /**
     * CoopRT area as a fraction of the warp-buffer area, computed the
     * paper's way: (combinational FF-equivalents + extra per-thread
     * bits) / warp-buffer bits. Paper: < 3.0 % for subwarp 32 with 4
     * warp-buffer entries.
     */
    static double
    overheadFraction(int subwarp_size = 32, int entries = 4)
    {
        const AreaReport r = coopLogic(subwarp_size);
        const double extra_bits = double(entries) * kWarpSize *
                                  kExtraBitsPerThread;
        return (r.ffEquivalent() + extra_bits) /
               double(warpBufferBits(entries));
    }

  private:
    static double
    log2i(int n)
    {
        double lg = 0.0;
        while (n > 1) {
            n >>= 1;
            lg += 1.0;
        }
        return lg;
    }

    // Calibration constants (fit to Table 3 within ~0.5 %).
    static constexpr double kFixedCells = 14532.0;
    static constexpr double kCellsPerLog2 = 318.0;
    static constexpr double kFixedUm2 = 11193.5;
    static constexpr double kUm2PerLog2 = 430.7;
};

} // namespace cooprt::power

#endif // COOPRT_POWER_AREA_MODEL_HPP

/**
 * @file
 * GpuWattch-style energy model (paper Section 6.1 uses GpuWattch).
 *
 * Energy = per-event dynamic energies (node fetches, intersection
 * tests, cache/DRAM traffic, LBU moves) + static leakage proportional
 * to runtime. This is exactly the structure behind the paper's Fig. 9
 * result: CoopRT does the same dynamic traversal work in fewer
 * cycles, so power rises (~2x) while total energy slightly falls
 * (~0.94x) because less static energy is burned.
 */

#ifndef COOPRT_POWER_ENERGY_MODEL_HPP
#define COOPRT_POWER_ENERGY_MODEL_HPP

#include "gpu/gpu.hpp"

namespace cooprt::power {

/**
 * Per-event dynamic energies (nanojoules) and static power.
 *
 * Calibrated so that on the bench workloads the static share of
 * baseline energy is ~12-16 %, matching the energy/power split that
 * GpuWattch reports for the paper's runs (from which its Fig. 9
 * power x2.02 / energy x0.94 shape follows). The per-event values
 * fold in the register-file, operand-collector and interconnect
 * energy that each architectural event drags along.
 */
struct EnergyCoefficients
{
    // RT-unit events.
    double box_test_nj = 0.3;
    double tri_test_nj = 0.6;
    double lbu_move_nj = 0.1;
    double stack_op_nj = 0.05; ///< per issue (pop + TOS bookkeeping)

    // Memory events (line granularity, including wire energy).
    double l1_access_nj = 5.0;
    double l2_access_nj = 12.0;
    double dram_access_nj = 30.0; ///< per 128 B line

    // SM shading-pipeline events (per attributed stall-class cycle).
    double shade_cycle_nj = 1.2;

    /** Static (gated leakage + clock) power per SM, watts. */
    double static_w_per_sm = 0.45;
};

/** Evaluated energy/power for one simulation run. */
struct PowerReport
{
    double dynamic_j = 0.0;
    double static_j = 0.0;
    double seconds = 0.0;

    double totalJoules() const { return dynamic_j + static_j; }
    double avgWatts() const
    { return seconds > 0.0 ? totalJoules() / seconds : 0.0; }
    /** Energy-delay product (paper Fig. 15), J*s. */
    double edp() const { return totalJoules() * seconds; }
};

/**
 * The energy model: applies coefficients to a GpuRunResult.
 */
class EnergyModel
{
  public:
    explicit EnergyModel(const EnergyCoefficients &coeffs = {},
                         double core_clock_ghz = 1.365)
        : c_(coeffs), clock_ghz_(core_clock_ghz)
    {}

    const EnergyCoefficients &coefficients() const { return c_; }

    /** Evaluate a run executed on @p num_sms SMs. */
    PowerReport
    evaluate(const gpu::GpuRunResult &r, int num_sms) const
    {
        PowerReport out;
        out.seconds = double(r.cycles) / (clock_ghz_ * 1e9);

        double nj = 0.0;
        nj += c_.box_test_nj * double(r.rt.box_tests);
        nj += c_.tri_test_nj * double(r.rt.tri_tests);
        nj += c_.lbu_move_nj * double(r.rt.steals);
        nj += c_.stack_op_nj * double(r.rt.issue_cycles);
        nj += c_.l1_access_nj * double(r.l1.accesses);
        nj += c_.l2_access_nj * double(r.l2.accesses);
        nj += c_.dram_access_nj * double(r.dram.requests);
        nj += c_.shade_cycle_nj *
              double(r.stalls.alu + r.stalls.sfu + r.stalls.mem);
        out.dynamic_j = nj * 1e-9;

        out.static_j = c_.static_w_per_sm * double(num_sms) *
                       out.seconds;
        return out;
    }

  private:
    EnergyCoefficients c_;
    double clock_ghz_;
};

} // namespace cooprt::power

#endif // COOPRT_POWER_ENERGY_MODEL_HPP

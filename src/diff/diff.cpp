#include "diff/diff.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "check/check.hpp"
#include "core/simulation.hpp"
#include "prof/prof.hpp"
#include "stats/table.hpp"
#include "telemetry/telemetry.hpp"

namespace cooprt::diff {

namespace {

/** The one bucket outside the resident-cycle conservation sum. */
constexpr const char *kWarpBufferFull = "warp_buffer_full";

std::string
formatPercent(double fraction)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+.2f%%", fraction * 100.0);
    return buf;
}

void
writeDelta(trace::JsonWriter &w, const char *key, const Delta &d)
{
    w.open(key);
    w.field("base", d.base);
    w.field("other", d.other);
    w.field("delta", d.delta());
    w.close();
}

} // namespace

/* ------------------------------------------------------------------ */
/* Normalization                                                       */
/* ------------------------------------------------------------------ */

RunRecord
recordFromOutcome(const core::RunOutcome &o)
{
    RunRecord r;
    r.schema_version = trace::kSchemaVersion;
    r.key = o.run_key;
    r.source = o.scene;

    r.cycles = std::int64_t(o.gpu.cycles);
    r.avg_watts = o.power.avgWatts();
    r.total_joules = o.power.totalJoules();
    r.edp = o.power.edp();
    r.l2_bytes = std::int64_t(o.gpu.mem_sys.l2_bytes);
    r.dram_bytes = std::int64_t(o.gpu.dram.bytes);
    r.avg_thread_utilization = o.gpu.avg_thread_utilization;

    if (o.gpu.prof_summary.enabled) {
        const auto &p = o.gpu.prof_summary;
        r.has_prof = true;
        r.resident_cycles = std::int64_t(p.resident_cycles);
        r.rt_stall_cycles = std::int64_t(p.rtStallCycles());
        for (int b = 0; b < prof::kNumBuckets; ++b)
            r.buckets.emplace_back(
                prof::bucketName(prof::Bucket(b)),
                std::int64_t(p.buckets[std::size_t(b)]));
    }

    if (o.gpu.memscope_summary.enabled) {
        const auto &m = o.gpu.memscope_summary;
        r.has_memscope = true;
        r.node_accesses = std::int64_t(m.node_accesses);
        r.node_bytes = std::int64_t(m.node_bytes);
        for (int l = 0; l < 3; ++l)
            r.node_level[std::size_t(l)] =
                std::int64_t(m.node_level[std::size_t(l)]);
        for (const auto &d : m.depths) {
            if (d.accesses == 0)
                continue;
            DepthRow row;
            row.depth = d.depth;
            row.accesses = std::int64_t(d.accesses);
            row.bytes = std::int64_t(d.bytes);
            for (int l = 0; l < 3; ++l)
                row.level[std::size_t(l)] =
                    std::int64_t(d.level[std::size_t(l)]);
            r.depths.push_back(row);
        }
    }

    if (o.gpu.ray_summary.enabled) {
        r.has_ray = true;
        for (const auto &e : o.gpu.ray_summary.critical) {
            r.critical_latency += std::int64_t(e.latency());
            r.critical_warps++;
        }
    }

    if (o.query.enabled) {
        r.has_query = true;
        r.query_workload = o.query.workload;
        r.query_queries = std::int64_t(o.query.queries);
        r.query_rounds = std::int64_t(o.query.rounds);
        r.query_found = std::int64_t(o.query.found);
        std::ostringstream csum;
        csum << "0x" << std::hex << o.query.checksum;
        r.query_checksum = csum.str();
    }

    if (o.telemetry.enabled) {
        r.has_host = true;
        for (int p = 0; p < telemetry::kNumPhases; ++p) {
            PhaseRow row;
            row.name = telemetry::phaseName(telemetry::Phase(p));
            row.seconds =
                o.telemetry.phases[std::size_t(p)].seconds;
            r.phases.push_back(row);
        }
        r.sim_seconds = o.telemetry.sim_seconds;
        r.rss_peak_kb = std::int64_t(o.telemetry.rss.peak_kb);
    }
    return r;
}

bool
recordFromReportJson(const JsonValue &doc, RunRecord *record,
                     std::string *error)
{
    const JsonValue *report = &doc;
    // Campaign JSON-lines wrap the report under "outcome".
    if (const JsonValue *outcome = doc.find("outcome")) {
        if (!doc.getBool("ok", true)) {
            if (error != nullptr)
                *error = "campaign line for tag '" +
                         doc.getString("tag") + "' reports ok=false";
            return false;
        }
        report = outcome;
    }
    if (!report->isObject()) {
        if (error != nullptr)
            *error = "document is not a JSON object";
        return false;
    }

    RunRecord r;
    r.schema_version = int(report->getInt("schema_version", 0));
    const JsonValue *key = report->find("run_key");
    if (key == nullptr || !key->isObject()) {
        if (error != nullptr)
            *error = "report carries no run_key block (schema_version "
                     "< 2 reports cannot be aligned; re-capture with "
                     "a current binary)";
        return false;
    }
    r.key.scene = key->getString("scene");
    r.key.shader = key->getString("shader");
    r.key.resolution = int(key->getInt("resolution"));
    r.key.fingerprint = key->getString("fingerprint");
    if (!r.key.valid()) {
        if (error != nullptr)
            *error = "run_key block is incomplete (empty scene)";
        return false;
    }
    r.source = doc.getString("tag", r.key.scene);

    r.cycles = report->getInt("cycles");
    if (const JsonValue *power = report->find("power")) {
        r.avg_watts = power->getDouble("avg_watts");
        r.total_joules = power->getDouble("dynamic_j") +
                         power->getDouble("static_j");
        r.edp = power->getDouble("edp");
    }
    if (const JsonValue *mem = report->find("memory")) {
        r.l2_bytes = mem->getInt("l2_bytes");
        r.dram_bytes = mem->getInt("dram_bytes");
    }
    r.avg_thread_utilization =
        report->getDouble("avg_thread_utilization");

    if (const JsonValue *p = report->find("prof")) {
        r.has_prof = true;
        r.resident_cycles = p->getInt("resident_cycles");
        r.rt_stall_cycles = p->getInt("rt_stall_cycles");
        if (const JsonValue *buckets = p->find("buckets"))
            for (const auto &m : buckets->members())
                r.buckets.emplace_back(m.first,
                                       m.second.intValue());
    }

    if (const JsonValue *m = report->find("memscope")) {
        r.has_memscope = true;
        r.node_accesses = m->getInt("node_accesses");
        r.node_bytes = m->getInt("node_bytes");
        if (const JsonValue *levels = m->find("levels")) {
            r.node_level[0] = levels->getInt("l1");
            r.node_level[1] = levels->getInt("l2");
            r.node_level[2] = levels->getInt("dram");
        }
        if (const JsonValue *depths = m->find("depths"))
            for (const JsonValue &row : depths->array()) {
                DepthRow d;
                d.depth = int(row.getInt("depth"));
                d.accesses = row.getInt("accesses");
                d.bytes = row.getInt("bytes");
                d.level[0] = row.getInt("l1");
                d.level[1] = row.getInt("l2");
                d.level[2] = row.getInt("dram");
                r.depths.push_back(d);
            }
    }

    if (const JsonValue *ray = report->find("ray")) {
        r.has_ray = true;
        if (const JsonValue *cp = ray->find("critical_path"))
            for (const JsonValue &e : cp->array()) {
                r.critical_latency += e.getInt("latency");
                r.critical_warps++;
            }
    }

    if (const JsonValue *q = report->find("query")) {
        r.has_query = true;
        r.query_workload = q->getString("workload");
        r.query_queries = q->getInt("queries");
        r.query_rounds = q->getInt("rounds");
        r.query_found = q->getInt("found");
        r.query_checksum = q->getString("checksum");
    }

    *record = r;
    return true;
}

bool
loadReportFile(const std::string &path, RunRecord *record,
               std::string *error)
{
    std::ifstream is(path);
    if (!is) {
        if (error != nullptr)
            *error = "cannot open '" + path + "'";
        return false;
    }
    std::ostringstream buf;
    buf << is.rdbuf();
    std::string parse_error;
    const JsonValue doc = JsonValue::parse(buf.str(), &parse_error);
    if (!doc.valid()) {
        if (error != nullptr)
            *error = path + ": " + parse_error;
        return false;
    }
    if (!recordFromReportJson(doc, record, error)) {
        if (error != nullptr)
            *error = path + ": " + *error;
        return false;
    }
    record->source = path;
    return true;
}

/* ------------------------------------------------------------------ */
/* Diffing                                                             */
/* ------------------------------------------------------------------ */

namespace {

/** Both sides as bytes/cycle (gpu::RunStats's exact expression),
 *  then other / base — fig12's normalized-bandwidth arithmetic. */
double
bandwidthRatio(const Delta &cycles, const Delta &bytes)
{
    const double base_bpc =
        cycles.base ? double(bytes.base) / double(cycles.base) : 0.0;
    const double other_bpc =
        cycles.other ? double(bytes.other) / double(cycles.other)
                     : 0.0;
    return base_bpc != 0.0 ? other_bpc / base_bpc : 0.0;
}

} // namespace

double
RunDiff::l2BandwidthRatio() const
{
    return bandwidthRatio(cycles, l2_bytes);
}

double
RunDiff::dramBandwidthRatio() const
{
    return bandwidthRatio(cycles, dram_bytes);
}

std::string
checkComparable(const RunRecord &base, const RunRecord &other)
{
    if (base.key.scene != other.key.scene)
        return "scene mismatch: '" + base.key.scene + "' vs '" +
               other.key.scene + "'";
    if (base.key.shader != other.key.shader)
        return "shader mismatch: '" + base.key.shader + "' vs '" +
               other.key.shader + "'";
    if (base.key.resolution != other.key.resolution)
        return "resolution mismatch: " +
               std::to_string(base.key.resolution) + " vs " +
               std::to_string(other.key.resolution);
    return {};
}

RunDiff
diffRuns(const RunRecord &base, const RunRecord &other)
{
    RunDiff d;
    d.base_key = base.key;
    d.other_key = other.key;
    d.base_source = base.source;
    d.other_source = other.source;
    d.same_fingerprint =
        base.key.fingerprint == other.key.fingerprint;

    d.cycles = {base.cycles, other.cycles};
    // Exactly core::Comparison's arithmetic, so diffing a (baseline,
    // CoopRT) report pair reproduces the fig09 columns bit-for-bit.
    d.speedup = other.cycles != 0
                    ? double(base.cycles) / double(other.cycles)
                    : 0.0;
    d.power_ratio = base.avg_watts != 0.0
                        ? other.avg_watts / base.avg_watts
                        : 0.0;
    d.energy_ratio = base.total_joules != 0.0
                         ? other.total_joules / base.total_joules
                         : 0.0;
    d.edp_improvement = other.edp != 0.0 ? base.edp / other.edp : 0.0;
    d.l2_bytes = {base.l2_bytes, other.l2_bytes};
    d.dram_bytes = {base.dram_bytes, other.dram_bytes};
    d.utilization_base = base.avg_thread_utilization;
    d.utilization_other = other.avg_thread_utilization;

    if (base.has_prof && other.has_prof) {
        d.has_prof = true;
        d.resident_cycles = {base.resident_cycles,
                             other.resident_cycles};
        d.rt_stall_cycles = {base.rt_stall_cycles,
                             other.rt_stall_cycles};
        // Align by bucket name: base order first (the taxonomy
        // order), then any names only the other run reported.
        for (const auto &[name, cycles] : base.buckets) {
            NamedDelta nd;
            nd.name = name;
            nd.d.base = cycles;
            for (const auto &[oname, ocycles] : other.buckets)
                if (oname == name) {
                    nd.d.other = ocycles;
                    break;
                }
            d.buckets.push_back(std::move(nd));
        }
        for (const auto &[oname, ocycles] : other.buckets) {
            bool seen = false;
            for (const auto &nd : d.buckets)
                if (nd.name == oname) {
                    seen = true;
                    break;
                }
            if (!seen)
                d.buckets.push_back(
                    NamedDelta{oname, Delta{0, ocycles}});
        }

#if COOPRT_CHECK_ENABLED
        // Conservation: non-warp_buffer_full bucket deltas must sum
        // bit-exactly to the resident-cycle delta — it holds per run
        // (prof's own invariant), so it must survive subtraction.
        std::int64_t bucket_delta_sum = 0;
        for (const auto &nd : d.buckets)
            if (nd.name != kWarpBufferFull)
                bucket_delta_sum += nd.d.delta();
        COOPRT_AUDIT("diff.engine", "diff.delta_conservation",
                     std::uint64_t(other.cycles),
                     bucket_delta_sum == d.resident_cycles.delta(),
                     "scene " + base.key.scene +
                         ": bucket delta sum " +
                         std::to_string(bucket_delta_sum) +
                         " != resident-cycle delta " +
                         std::to_string(d.resident_cycles.delta()));
#endif
    }

    if (base.has_memscope && other.has_memscope) {
        d.has_memscope = true;
        d.node_accesses = {base.node_accesses, other.node_accesses};
        d.node_bytes = {base.node_bytes, other.node_bytes};
        for (int l = 0; l < 3; ++l)
            d.node_level[std::size_t(l)] = {
                base.node_level[std::size_t(l)],
                other.node_level[std::size_t(l)]};
        // Union of touched depths, ascending; a depth absent on one
        // side contributes zeros there.
        std::map<int, DepthDelta> by_depth;
        for (const auto &row : base.depths) {
            DepthDelta &dd = by_depth[row.depth];
            dd.depth = row.depth;
            dd.accesses.base = row.accesses;
            dd.bytes.base = row.bytes;
            for (int l = 0; l < 3; ++l)
                dd.level[std::size_t(l)].base =
                    row.level[std::size_t(l)];
        }
        for (const auto &row : other.depths) {
            DepthDelta &dd = by_depth[row.depth];
            dd.depth = row.depth;
            dd.accesses.other = row.accesses;
            dd.bytes.other = row.bytes;
            for (int l = 0; l < 3; ++l)
                dd.level[std::size_t(l)].other =
                    row.level[std::size_t(l)];
        }
        for (const auto &[depth, dd] : by_depth)
            d.depths.push_back(dd);
    }

    if (base.has_ray && other.has_ray) {
        d.has_ray = true;
        d.critical_latency = {base.critical_latency,
                              other.critical_latency};
    }

    if (base.has_query && other.has_query) {
        d.has_query = true;
        d.query_rounds = {base.query_rounds, other.query_rounds};
        d.query_found = {base.query_found, other.query_found};
        d.base_checksum = base.query_checksum;
        d.other_checksum = other.query_checksum;
        d.checksum_match =
            base.query_checksum == other.query_checksum;
    }

    if (base.has_host && other.has_host) {
        d.has_host = true;
        for (const auto &p : base.phases) {
            PhaseDelta pd;
            pd.name = p.name;
            pd.base_s = p.seconds;
            for (const auto &op : other.phases)
                if (op.name == p.name) {
                    pd.other_s = op.seconds;
                    break;
                }
            d.phases.push_back(std::move(pd));
        }
        d.sim_seconds_base = base.sim_seconds;
        d.sim_seconds_other = other.sim_seconds;
        d.rss_peak_kb = {base.rss_peak_kb, other.rss_peak_kb};
    }
    return d;
}

/* ------------------------------------------------------------------ */
/* Attribution summary                                                 */
/* ------------------------------------------------------------------ */

std::string
attributionSummary(const RunDiff &d)
{
    if (d.cycles.delta() == 0 || d.cycles.base == 0)
        return {};
    std::string out =
        "cycles " +
        formatPercent(double(d.cycles.delta()) /
                      double(d.cycles.base));

    if (d.has_prof) {
        // Rank buckets by |delta| and name the top contributors as a
        // share of the base run's resident warp-cycles (bucket
        // cycles are summed over warps, so GPU cycles would be the
        // wrong denominator).
        const double denom = d.resident_cycles.base != 0
                                 ? double(d.resident_cycles.base)
                                 : double(d.cycles.base);
        std::vector<const NamedDelta *> ranked;
        for (const auto &nd : d.buckets)
            if (nd.d.delta() != 0)
                ranked.push_back(&nd);
        std::sort(ranked.begin(), ranked.end(),
                  [](const NamedDelta *a, const NamedDelta *b) {
                      const std::int64_t da = std::abs(a->d.delta());
                      const std::int64_t db = std::abs(b->d.delta());
                      if (da != db)
                          return da > db;
                      return a->name < b->name;
                  });
        std::string buckets;
        const std::size_t top = std::min<std::size_t>(2,
                                                      ranked.size());
        for (std::size_t i = 0; i < top; ++i) {
            if (!buckets.empty())
                buckets += ", ";
            buckets += ranked[i]->name + " " +
                       formatPercent(double(ranked[i]->d.delta()) /
                                     denom);
        }
        if (!buckets.empty())
            out += ": " + buckets;
    }

    if (d.has_memscope && !d.depths.empty()) {
        // Where in the tree the traffic delta concentrates: depths
        // whose |accesses delta| is within 10x of the peak.
        std::int64_t peak = 0;
        for (const auto &row : d.depths)
            peak = std::max(peak, std::abs(row.accesses.delta()));
        if (peak > 0) {
            int lo = -1;
            int hi = -1;
            for (const auto &row : d.depths)
                if (std::abs(row.accesses.delta()) * 10 >= peak) {
                    if (lo < 0)
                        lo = row.depth;
                    hi = row.depth;
                }
            if (lo >= 0)
                out += " (depth " + std::to_string(lo) +
                       (hi > lo ? "-" + std::to_string(hi) : "") +
                       ")";
        }
    }
    return out;
}

/* ------------------------------------------------------------------ */
/* Output: JSON                                                        */
/* ------------------------------------------------------------------ */

void
writeJson(std::ostream &os, const RunDiff &d)
{
    trace::JsonWriter w(os);
    w.open();
    trace::writeSchemaVersion(w);
    // The base run's key anchors the document; the other key differs
    // (at most) in its fingerprint once checkComparable has passed.
    trace::writeRunKey(w, d.base_key);
    w.open("other_key");
    w.field("scene", d.other_key.scene);
    w.field("shader", d.other_key.shader);
    w.field("resolution", d.other_key.resolution);
    w.field("fingerprint", d.other_key.fingerprint);
    w.close();
    w.field("same_fingerprint",
            d.same_fingerprint ? "true" : "false");
    w.open("build");
    telemetry::writeBuildFields(w);
    w.close();

    writeDelta(w, "cycles", d.cycles);
    w.field("speedup", d.speedup);
    w.open("power");
    w.field("power_ratio", d.power_ratio);
    w.field("energy_ratio", d.energy_ratio);
    w.field("edp_improvement", d.edp_improvement);
    w.close();
    w.open("bandwidth");
    writeDelta(w, "l2_bytes", d.l2_bytes);
    writeDelta(w, "dram_bytes", d.dram_bytes);
    w.field("l2_ratio", d.l2BandwidthRatio());
    w.field("dram_ratio", d.dramBandwidthRatio());
    w.close();
    w.open("utilization");
    w.field("base", d.utilization_base);
    w.field("other", d.utilization_other);
    w.close();

    if (d.has_prof) {
        w.open("prof");
        writeDelta(w, "resident_cycles", d.resident_cycles);
        writeDelta(w, "rt_stall_cycles", d.rt_stall_cycles);
        w.openArray("buckets");
        for (const auto &nd : d.buckets) {
            w.open();
            w.field("name", nd.name);
            w.field("base", nd.d.base);
            w.field("other", nd.d.other);
            w.field("delta", nd.d.delta());
            w.close();
        }
        w.closeArray();
        w.close();
    }

    if (d.has_memscope) {
        w.open("memscope");
        writeDelta(w, "node_accesses", d.node_accesses);
        writeDelta(w, "node_bytes", d.node_bytes);
        w.open("levels");
        writeDelta(w, "l1", d.node_level[0]);
        writeDelta(w, "l2", d.node_level[1]);
        writeDelta(w, "dram", d.node_level[2]);
        w.close();
        w.openArray("depths");
        for (const auto &row : d.depths) {
            w.open();
            w.field("depth", row.depth);
            writeDelta(w, "accesses", row.accesses);
            writeDelta(w, "bytes", row.bytes);
            writeDelta(w, "l1", row.level[0]);
            writeDelta(w, "l2", row.level[1]);
            writeDelta(w, "dram", row.level[2]);
            w.close();
        }
        w.closeArray();
        w.close();
    }

    if (d.has_ray) {
        w.open("ray");
        writeDelta(w, "critical_latency", d.critical_latency);
        w.close();
    }

    if (d.has_query) {
        w.open("query");
        writeDelta(w, "rounds", d.query_rounds);
        writeDelta(w, "found", d.query_found);
        w.field("checksum_match",
                d.checksum_match ? "true" : "false");
        w.field("base_checksum", d.base_checksum);
        w.field("other_checksum", d.other_checksum);
        w.close();
    }

    w.field("attribution", attributionSummary(d));

    if (d.has_host) {
        // Host wall clock / RSS: the only nondeterministic fields in
        // a diff document, isolated like every other "host" object.
        w.open("host");
        w.open("phases");
        for (const auto &p : d.phases) {
            w.open(p.name.c_str());
            w.field("base_s", p.base_s);
            w.field("other_s", p.other_s);
            w.field("delta_s", p.deltaSeconds());
            w.close();
        }
        w.close();
        w.field("sim_seconds_base", d.sim_seconds_base);
        w.field("sim_seconds_other", d.sim_seconds_other);
        writeDelta(w, "rss_peak_kb", d.rss_peak_kb);
        w.close();
    }
    w.close();
    os << '\n';
}

/* ------------------------------------------------------------------ */
/* Output: text / markdown                                             */
/* ------------------------------------------------------------------ */

void
writeText(std::ostream &os, const RunDiff &d)
{
    os << "run key: scene=" << d.base_key.scene
       << " shader=" << d.base_key.shader
       << " resolution=" << d.base_key.resolution << "\n";
    os << "fingerprints: " << d.base_key.fingerprint << " -> "
       << d.other_key.fingerprint
       << (d.same_fingerprint ? " (identical configs)" : "") << "\n";
    os << "sources: " << d.base_source << " -> " << d.other_source
       << "\n\n";

    stats::Table headline({"metric", "base", "other", "delta"});
    headline.row()
        .cell(std::string("cycles"))
        .cell(std::uint64_t(d.cycles.base))
        .cell(std::uint64_t(d.cycles.other))
        .cell(std::to_string(d.cycles.delta()));
    headline.row()
        .cell(std::string("speedup (base/other)"))
        .cell(std::string(""))
        .cell(std::string(""))
        .cell(d.speedup, 4);
    headline.row()
        .cell(std::string("power ratio"))
        .cell(std::string(""))
        .cell(std::string(""))
        .cell(d.power_ratio, 4);
    headline.row()
        .cell(std::string("energy ratio"))
        .cell(std::string(""))
        .cell(std::string(""))
        .cell(d.energy_ratio, 4);
    headline.row()
        .cell(std::string("edp improvement"))
        .cell(std::string(""))
        .cell(std::string(""))
        .cell(d.edp_improvement, 4);
    headline.row()
        .cell(std::string("l2 bytes"))
        .cell(std::uint64_t(d.l2_bytes.base))
        .cell(std::uint64_t(d.l2_bytes.other))
        .cell(std::to_string(d.l2_bytes.delta()));
    headline.row()
        .cell(std::string("dram bytes"))
        .cell(std::uint64_t(d.dram_bytes.base))
        .cell(std::uint64_t(d.dram_bytes.other))
        .cell(std::to_string(d.dram_bytes.delta()));
    headline.row()
        .cell(std::string("thread utilization"))
        .cell(d.utilization_base, 4)
        .cell(d.utilization_other, 4)
        .cell(d.utilization_other - d.utilization_base, 4);
    headline.print(os);

    if (d.has_prof) {
        os << "\nstall attribution (cycles per prof bucket):\n";
        stats::Table t({"bucket", "base", "other", "delta"});
        t.row()
            .cell(std::string("resident_cycles"))
            .cell(std::uint64_t(d.resident_cycles.base))
            .cell(std::uint64_t(d.resident_cycles.other))
            .cell(std::to_string(d.resident_cycles.delta()));
        for (const auto &nd : d.buckets)
            t.row()
                .cell(nd.name)
                .cell(std::uint64_t(nd.d.base))
                .cell(std::uint64_t(nd.d.other))
                .cell(std::to_string(nd.d.delta()));
        t.print(os);
    }

    if (d.has_memscope) {
        os << "\nBVH traffic (node fetches per depth x serving "
              "level):\n";
        stats::Table t({"depth", "d_accesses", "d_l1", "d_l2",
                        "d_dram", "d_bytes"});
        for (const auto &row : d.depths)
            t.row()
                .cell(std::uint64_t(row.depth))
                .cell(std::to_string(row.accesses.delta()))
                .cell(std::to_string(row.level[0].delta()))
                .cell(std::to_string(row.level[1].delta()))
                .cell(std::to_string(row.level[2].delta()))
                .cell(std::to_string(row.bytes.delta()));
        t.print(os);
    }

    if (d.has_ray)
        os << "\ncritical path: latency " << d.critical_latency.base
           << " -> " << d.critical_latency.other << " ("
           << (d.critical_latency.delta() >= 0 ? "+" : "")
           << d.critical_latency.delta() << ")\n";

    if (d.has_query)
        os << "\nquery: rounds " << d.query_rounds.base << " -> "
           << d.query_rounds.other << ", found "
           << d.query_found.base << " -> " << d.query_found.other
           << ", checksum "
           << (d.checksum_match ? "MATCH" : "MISMATCH") << " ("
           << d.base_checksum << " vs " << d.other_checksum << ")\n";

    const std::string attribution = attributionSummary(d);
    if (!attribution.empty())
        os << "\nattribution: " << attribution << "\n";
}

void
writeMarkdown(std::ostream &os, const RunDiff &d)
{
    os << "## Run diff: " << d.base_key.scene << " ("
       << d.base_key.shader << ", " << d.base_key.resolution << "x"
       << d.base_key.resolution << ")\n\n";
    os << "- fingerprints: `" << d.base_key.fingerprint << "` -> `"
       << d.other_key.fingerprint << "`\n";
    os << "- speedup (base/other): **";
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.4f", d.speedup);
        os << buf;
    }
    os << "**\n";
    const std::string attribution = attributionSummary(d);
    if (!attribution.empty())
        os << "- attribution: " << attribution << "\n";
    os << "\n| metric | base | other | delta |\n";
    os << "|---|---:|---:|---:|\n";
    os << "| cycles | " << d.cycles.base << " | " << d.cycles.other
       << " | " << d.cycles.delta() << " |\n";
    os << "| l2 bytes | " << d.l2_bytes.base << " | "
       << d.l2_bytes.other << " | " << d.l2_bytes.delta() << " |\n";
    os << "| dram bytes | " << d.dram_bytes.base << " | "
       << d.dram_bytes.other << " | " << d.dram_bytes.delta()
       << " |\n";
    if (d.has_prof) {
        os << "\n| prof bucket | base | other | delta |\n";
        os << "|---|---:|---:|---:|\n";
        os << "| resident_cycles | " << d.resident_cycles.base
           << " | " << d.resident_cycles.other << " | "
           << d.resident_cycles.delta() << " |\n";
        for (const auto &nd : d.buckets)
            os << "| " << nd.name << " | " << nd.d.base << " | "
               << nd.d.other << " | " << nd.d.delta() << " |\n";
    }
    if (d.has_memscope) {
        os << "\n| depth | d accesses | d l1 | d l2 | d dram |\n";
        os << "|---:|---:|---:|---:|---:|\n";
        for (const auto &row : d.depths)
            os << "| " << row.depth << " | " << row.accesses.delta()
               << " | " << row.level[0].delta() << " | "
               << row.level[1].delta() << " | "
               << row.level[2].delta() << " |\n";
    }
    if (d.has_query)
        os << "\n- query checksum: "
           << (d.checksum_match ? "match" : "**MISMATCH**") << " (`"
           << d.base_checksum << "` vs `" << d.other_checksum
           << "`)\n";
}

/* ------------------------------------------------------------------ */
/* Differ                                                              */
/* ------------------------------------------------------------------ */

bool
Differ::compare(const RunRecord &base, const RunRecord &other,
                RunDiff *out, std::string *error)
{
    attempts_++;
    const std::string mismatch = checkComparable(base, other);
    if (!mismatch.empty()) {
        key_mismatches_++;
        if (error != nullptr)
            *error = mismatch + " (" + base.source + " vs " +
                     other.source + ")";
    } else {
        comparisons_++;
        *out = diffRuns(base, other);
    }
#if COOPRT_CHECK_ENABLED
    COOPRT_AUDIT("diff.engine", "diff.attempts_conserve", attempts_,
                 comparisons_ + key_mismatches_ == attempts_,
                 "comparisons_=" + std::to_string(comparisons_) +
                     " + key_mismatches_=" +
                     std::to_string(key_mismatches_) +
                     " != attempts_=" + std::to_string(attempts_));
#endif
    return mismatch.empty();
}

void
Differ::registerMetrics(cooprt::trace::Registry &registry)
{
    registry.probe(
        "diff.comparisons", [this] { return double(comparisons_); },
        this);
    registry.probe(
        "diff.key_mismatches",
        [this] { return double(key_mismatches_); }, this);
}

} // namespace cooprt::diff

/**
 * @file
 * Minimal recursive-descent JSON reader for the diff engine. The
 * repository *emits* JSON through trace::JsonWriter; `cooprt::diff`
 * is the first subsystem that must *ingest* it back (run reports,
 * campaign JSON-lines, observer sinks), so this is the matching
 * dependency-free parser.
 *
 * Design points that matter to diffing:
 *   - Integers and doubles are distinct kinds. Cycle counts round-
 *     trip through std::int64_t exactly, which is what makes the
 *     bucket-delta conservation check *bit*-exact instead of
 *     within-epsilon (DESIGN.md section 18).
 *   - Object members preserve document order (vector of pairs, not a
 *     map), so anything re-emitted from a parsed document stays
 *     deterministic and diffable.
 *   - No exceptions: parse() returns an Invalid value and fills an
 *     error string with an offset-tagged message.
 */

#ifndef COOPRT_DIFF_JSON_VALUE_HPP
#define COOPRT_DIFF_JSON_VALUE_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cooprt::diff {

class JsonValue
{
  public:
    enum class Kind
    {
        Invalid, ///< parse failure (never nested inside a document)
        Null,
        Bool,
        Int,    ///< lexically integral and fits std::int64_t
        Double, ///< fraction/exponent present, or out of Int range
        String,
        Array,
        Object,
    };

    using Member = std::pair<std::string, JsonValue>;

    JsonValue() = default;

    /**
     * Parse @p text (one complete JSON document; trailing whitespace
     * allowed, trailing garbage is an error). On failure returns a
     * value of kind Invalid and, when @p error is non-null, fills it
     * with a byte-offset-tagged message.
     */
    static JsonValue parse(std::string_view text,
                           std::string *error = nullptr);

    Kind kind() const { return kind_; }
    bool valid() const { return kind_ != Kind::Invalid; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isInt() const { return kind_ == Kind::Int; }
    bool isDouble() const { return kind_ == Kind::Double; }
    /** Int or Double. */
    bool isNumber() const { return isInt() || isDouble(); }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool boolValue() const { return bool_; }
    /** Exact value for Int kind; truncates for Double kind. */
    std::int64_t intValue() const
    { return kind_ == Kind::Double ? std::int64_t(double_) : int_; }
    /** Numeric value widened to double for either numeric kind. */
    double numberValue() const
    { return kind_ == Kind::Int ? double(int_) : double_; }
    const std::string &stringValue() const { return string_; }

    const std::vector<JsonValue> &array() const { return array_; }
    const std::vector<Member> &members() const { return members_; }

    std::size_t size() const
    { return isArray() ? array_.size() : members_.size(); }

    /** Object member by key; null pointer when absent / not an
     *  object (so lookups chain without intermediate checks). */
    const JsonValue *find(std::string_view key) const;

    /* -- typed convenience lookups (defaulted when absent) -------- */
    std::int64_t getInt(std::string_view key,
                        std::int64_t fallback = 0) const;
    double getDouble(std::string_view key,
                     double fallback = 0.0) const;
    std::string getString(std::string_view key,
                          const std::string &fallback = {}) const;
    bool getBool(std::string_view key, bool fallback = false) const;

  private:
    Kind kind_ = Kind::Invalid;
    bool bool_ = false;
    std::int64_t int_ = 0;
    double double_ = 0.0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::vector<Member> members_;

    friend class JsonParser;
};

} // namespace cooprt::diff

#endif // COOPRT_DIFF_JSON_VALUE_HPP

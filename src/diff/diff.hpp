/**
 * @file
 * `cooprt::diff` — the cross-run differential attribution engine
 * (DESIGN.md section 18).
 *
 * Every headline claim in the paper is a *difference* between two
 * runs (CoopRT vs baseline, arity A vs arity B), and PRs 1-9 built
 * five observability layers that each describe one run in isolation.
 * This engine closes the loop: it ingests two run records — either
 * in-process `core::RunOutcome`s or schema-v2 JSON report documents
 * — aligns them by the canonical run key (scene, shader, resolution;
 * see trace::RunKeyFields), and attributes the cycle delta across
 * every axis the observers measure:
 *
 *   - prof:      cycle delta per stall bucket, with the conservation
 *                guarantee that non-warp_buffer_full bucket deltas
 *                sum *bit-exactly* to the resident-cycle delta
 *                (integer arithmetic end to end);
 *   - memscope:  node-fetch delta per BVH depth x serving memory
 *                level (where in the tree, and from which level, the
 *                saved traffic came);
 *   - raytrace:  critical-path latency delta of the slowest sampled
 *                warps;
 *   - query:     round/found deltas and checksum agreement (a
 *                checksum mismatch means the runs computed different
 *                *answers*, not just different speeds);
 *   - telemetry: per-phase wall-clock and peak-RSS deltas, kept in a
 *                "host" object because they are the only
 *                nondeterministic fields in a diff.
 *
 * Two records are comparable when scene, shader and resolution
 * match. Fingerprints are NOT required to differ or to match: two
 * different fingerprints is the normal case (the configuration
 * change IS what is being measured), equal fingerprints is an
 * identity check (every deterministic delta must then be zero).
 *
 * Speedup is `base.cycles / other.cycles` computed in the exact same
 * double arithmetic as `core::Comparison::speedup()`, so a diff of a
 * (baseline, CoopRT) report pair reproduces the fig09 column
 * bit-for-bit.
 */

#ifndef COOPRT_DIFF_DIFF_HPP
#define COOPRT_DIFF_DIFF_HPP

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "diff/json_value.hpp"
#include "trace/json.hpp"
#include "trace/registry.hpp"

namespace cooprt::core {
struct RunOutcome;
}

namespace cooprt::diff {

/* ------------------------------------------------------------------ */
/* Run records (the engine's normalized input)                         */
/* ------------------------------------------------------------------ */

/** One memscope depth row: node fetches at @p depth split by the
 *  memory level that served them. */
struct DepthRow
{
    int depth = 0;
    std::int64_t accesses = 0;
    std::int64_t bytes = 0;
    /** [0]=l1, [1]=l2, [2]=dram. */
    std::array<std::int64_t, 3> level{};
};

/** One telemetry phase span (host wall clock). */
struct PhaseRow
{
    std::string name;
    double seconds = 0.0;
};

/**
 * Everything the diff engine keeps about one run: the run key plus
 * the deterministic metric surface, normalized so a record built
 * from a live `core::RunOutcome` and a record parsed back from its
 * JSON report diff identically.
 */
struct RunRecord
{
    int schema_version = 0;
    cooprt::trace::RunKeyFields key;
    /** Where this record came from (file path / job tag), for
     *  diagnostics only. */
    std::string source;

    /* Headline. */
    std::int64_t cycles = 0;
    double avg_watts = 0.0;
    double total_joules = 0.0;
    double edp = 0.0;
    std::int64_t l2_bytes = 0;
    std::int64_t dram_bytes = 0;
    double avg_thread_utilization = 0.0;

    /* prof (stall-attribution taxonomy). */
    bool has_prof = false;
    std::int64_t resident_cycles = 0;
    std::int64_t rt_stall_cycles = 0;
    /** (bucket name, cycles) in taxonomy order. */
    std::vector<std::pair<std::string, std::int64_t>> buckets;

    /* memscope (BVH topology x memory hierarchy). */
    bool has_memscope = false;
    std::int64_t node_accesses = 0;
    std::int64_t node_bytes = 0;
    std::array<std::int64_t, 3> node_level{};
    std::vector<DepthRow> depths;

    /* raytrace (critical path). */
    bool has_ray = false;
    /** Sum of per-SM slowest-warp latencies. */
    std::int64_t critical_latency = 0;
    std::int64_t critical_warps = 0;

    /* query workloads. */
    bool has_query = false;
    std::string query_workload;
    std::int64_t query_queries = 0;
    std::int64_t query_rounds = 0;
    std::int64_t query_found = 0;
    /** "0x..." hex string, exactly as reported. */
    std::string query_checksum;

    /* telemetry (host; nondeterministic). */
    bool has_host = false;
    std::vector<PhaseRow> phases;
    double sim_seconds = 0.0;
    std::int64_t rss_peak_kb = 0;
};

/** Normalize a live outcome (bench/campaign in-process path). */
RunRecord recordFromOutcome(const core::RunOutcome &outcome);

/**
 * Normalize a parsed schema-v2 JSON document: either a run report
 * (`core::writeJson`) or one campaign JSON line (the report is then
 * under `"outcome"`). Returns false and fills @p error when the
 * document carries no run key (pre-v2 reports cannot be aligned).
 */
bool recordFromReportJson(const JsonValue &doc, RunRecord *record,
                          std::string *error);

/** Read + parse + normalize one report file. */
bool loadReportFile(const std::string &path, RunRecord *record,
                    std::string *error);

/* ------------------------------------------------------------------ */
/* Deltas                                                              */
/* ------------------------------------------------------------------ */

/** One integer metric across the two runs (delta = other - base). */
struct Delta
{
    std::int64_t base = 0;
    std::int64_t other = 0;
    std::int64_t delta() const { return other - base; }
};

/** A named Delta (prof bucket rows). */
struct NamedDelta
{
    std::string name;
    Delta d;
};

/** One depth x level attribution row. */
struct DepthDelta
{
    int depth = 0;
    Delta accesses;
    Delta bytes;
    /** [0]=l1, [1]=l2, [2]=dram. */
    std::array<Delta, 3> level;
};

/** One host phase across the two runs (nondeterministic). */
struct PhaseDelta
{
    std::string name;
    double base_s = 0.0;
    double other_s = 0.0;
    double deltaSeconds() const { return other_s - base_s; }
};

/** The aligned diff of two comparable runs. */
struct RunDiff
{
    cooprt::trace::RunKeyFields base_key;
    cooprt::trace::RunKeyFields other_key;
    std::string base_source;
    std::string other_source;
    /** True when the two fingerprints are equal (identity diff:
     *  every deterministic delta must be zero). */
    bool same_fingerprint = false;

    Delta cycles;
    /** base.cycles / other.cycles — fig09's exact arithmetic. */
    double speedup = 0.0;
    /** other / base (fig09's power & energy columns). */
    double power_ratio = 0.0;
    double energy_ratio = 0.0;
    /** base.edp / other.edp (fig15; > 1 is better). */
    double edp_improvement = 0.0;
    Delta l2_bytes;
    Delta dram_bytes;
    double utilization_base = 0.0;
    double utilization_other = 0.0;

    bool has_prof = false;
    Delta resident_cycles;
    Delta rt_stall_cycles;
    /** Taxonomy-ordered; non-warp_buffer_full deltas sum exactly to
     *  resident_cycles.delta() (the conservation invariant). */
    std::vector<NamedDelta> buckets;

    bool has_memscope = false;
    Delta node_accesses;
    Delta node_bytes;
    std::array<Delta, 3> node_level;
    /** Union of touched depths, ascending; absent side reads 0. */
    std::vector<DepthDelta> depths;

    bool has_ray = false;
    Delta critical_latency;

    bool has_query = false;
    Delta query_rounds;
    Delta query_found;
    bool checksum_match = false;
    std::string base_checksum;
    std::string other_checksum;

    bool has_host = false;
    std::vector<PhaseDelta> phases;
    double sim_seconds_base = 0.0;
    double sim_seconds_other = 0.0;
    Delta rss_peak_kb;

    /**
     * (other L2 bytes/cycle) / (base L2 bytes/cycle), each side
     * computed exactly like `gpu::RunStats::l2BytesPerCycle()` so
     * fig12's normalized-bandwidth column reproduces bit-for-bit.
     */
    double l2BandwidthRatio() const;
    /** DRAM counterpart of `l2BandwidthRatio()` (fig12). */
    double dramBandwidthRatio() const;
};

/**
 * Why two records cannot be diffed; empty string == comparable.
 * Scene, shader and resolution must match; fingerprints need not.
 */
std::string checkComparable(const RunRecord &base,
                            const RunRecord &other);

/**
 * Diff two *comparable* records (callers gate on checkComparable).
 * Audits the bucket-delta conservation invariant
 * (`diff.delta_conservation`) under COOPRT_CHECK.
 */
RunDiff diffRuns(const RunRecord &base, const RunRecord &other);

/* ------------------------------------------------------------------ */
/* Output surfaces                                                     */
/* ------------------------------------------------------------------ */

/**
 * The diff as one schema-stamped JSON document (validated by
 * tools/validate_diff.py). Deterministic except for the optional
 * trailing "host" object. One line, newline-terminated — suitable
 * both as a file and as a JSON-lines sink entry.
 */
void writeJson(std::ostream &os, const RunDiff &d);

/** Aligned human-readable tables (stdout surface of diff_cli). */
void writeText(std::ostream &os, const RunDiff &d);

/** GitHub-flavoured markdown export (`diff_cli --markdown`). */
void writeMarkdown(std::ostream &os, const RunDiff &d);

/**
 * A one-line attribution summary for regression messages, e.g.
 *
 *   "cycles +6.1%: starved_l2 +4.1% (depth 3-5), stack_bound +1.8%"
 *
 * The cycle percentage is of the base run's cycle count; bucket
 * percentages are of the base run's resident warp-cycles (bucket
 * cycles are per-warp sums). The depth range is where the memscope
 * traffic delta concentrates. Empty when the cycle delta is zero.
 */
std::string attributionSummary(const RunDiff &d);

/* ------------------------------------------------------------------ */
/* Engine handle                                                       */
/* ------------------------------------------------------------------ */

/**
 * Stateful wrapper used by the CLIs: counts comparisons and key
 * mismatches and exposes them as `diff.*` registry probes (owned by
 * src/diff/diff.cpp per the registry-authority table).
 */
class Differ
{
  public:
    /**
     * Diff @p base against @p other if comparable. Returns true and
     * fills @p out on success; returns false and fills @p error
     * (counting a key mismatch) otherwise.
     */
    bool compare(const RunRecord &base, const RunRecord &other,
                 RunDiff *out, std::string *error);

    std::uint64_t comparisons() const { return comparisons_; }
    std::uint64_t keyMismatches() const { return key_mismatches_; }

    /** Register the engine's counters as `diff.*` probes. */
    void registerMetrics(cooprt::trace::Registry &registry);

  private:
    std::uint64_t attempts_ = 0;
    std::uint64_t comparisons_ = 0;
    std::uint64_t key_mismatches_ = 0;
};

} // namespace cooprt::diff

#endif // COOPRT_DIFF_DIFF_HPP

#include "diff/json_value.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace cooprt::diff {

/** Hand-rolled recursive-descent parser over a string_view. */
class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    JsonValue
    run(std::string *error)
    {
        JsonValue v = parseValue();
        if (v.valid()) {
            skipWs();
            if (pos_ != text_.size())
                fail("trailing garbage after document");
        }
        if (!error_.empty()) {
            if (error != nullptr)
                *error = error_;
            return JsonValue{};
        }
        return v;
    }

  private:
    std::string_view text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
    std::string error_;

    /** Deep documents are malformed input, not a stack overflow. */
    static constexpr int kMaxDepth = 64;

    void
    fail(const std::string &what)
    {
        if (error_.empty())
            error_ = "offset " + std::to_string(pos_) + ": " + what;
    }

    bool done() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    void
    skipWs()
    {
        while (!done()) {
            const char c = peek();
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        if (done() || peek() != c)
            return false;
        ++pos_;
        return true;
    }

    bool
    consumeWord(const char *word)
    {
        const std::size_t n = std::strlen(word);
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    JsonValue
    parseValue()
    {
        skipWs();
        if (done()) {
            fail("unexpected end of input");
            return {};
        }
        if (++depth_ > kMaxDepth) {
            fail("nesting deeper than 64 levels");
            --depth_;
            return {};
        }
        JsonValue v;
        const char c = peek();
        if (c == '{')
            v = parseObject();
        else if (c == '[')
            v = parseArray();
        else if (c == '"')
            v = parseString();
        else if (c == '-' || (c >= '0' && c <= '9'))
            v = parseNumber();
        else if (consumeWord("true")) {
            v.kind_ = JsonValue::Kind::Bool;
            v.bool_ = true;
        } else if (consumeWord("false")) {
            v.kind_ = JsonValue::Kind::Bool;
            v.bool_ = false;
        } else if (consumeWord("null")) {
            v.kind_ = JsonValue::Kind::Null;
        } else {
            fail("unexpected character '" + std::string(1, c) + "'");
        }
        --depth_;
        return v;
    }

    JsonValue
    parseObject()
    {
        JsonValue v;
        ++pos_; // '{'
        v.kind_ = JsonValue::Kind::Object;
        skipWs();
        if (consume('}'))
            return v;
        for (;;) {
            skipWs();
            if (done() || peek() != '"') {
                fail("expected object key");
                return {};
            }
            JsonValue key = parseString();
            if (!key.valid())
                return {};
            skipWs();
            if (!consume(':')) {
                fail("expected ':' after object key");
                return {};
            }
            JsonValue member = parseValue();
            if (!member.valid())
                return {};
            v.members_.emplace_back(std::move(key.string_),
                                    std::move(member));
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                return v;
            fail("expected ',' or '}' in object");
            return {};
        }
    }

    JsonValue
    parseArray()
    {
        JsonValue v;
        ++pos_; // '['
        v.kind_ = JsonValue::Kind::Array;
        skipWs();
        if (consume(']'))
            return v;
        for (;;) {
            JsonValue element = parseValue();
            if (!element.valid())
                return {};
            v.array_.push_back(std::move(element));
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                return v;
            fail("expected ',' or ']' in array");
            return {};
        }
    }

    JsonValue
    parseString()
    {
        JsonValue v;
        ++pos_; // '"'
        std::string out;
        while (!done()) {
            const char c = text_[pos_++];
            if (c == '"') {
                v.kind_ = JsonValue::Kind::String;
                v.string_ = std::move(out);
                return v;
            }
            if (c != '\\') {
                out += c;
                continue;
            }
            if (done()) {
                fail("unterminated escape");
                return {};
            }
            const char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (pos_ + 4 > text_.size()) {
                    fail("truncated \\u escape");
                    return {};
                }
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= unsigned(h - 'A' + 10);
                    else {
                        fail("bad \\u escape digit");
                        return {};
                    }
                }
                // UTF-8 encode the BMP code point. The repository's
                // own writer only ever emits \u00XX control escapes;
                // surrogate pairs are out of scope.
                if (code < 0x80) {
                    out += char(code);
                } else if (code < 0x800) {
                    out += char(0xc0 | (code >> 6));
                    out += char(0x80 | (code & 0x3f));
                } else {
                    out += char(0xe0 | (code >> 12));
                    out += char(0x80 | ((code >> 6) & 0x3f));
                    out += char(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                fail("unknown escape '\\" + std::string(1, e) + "'");
                return {};
            }
        }
        fail("unterminated string");
        return {};
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = pos_;
        if (consume('-')) {
        }
        while (!done() && peek() >= '0' && peek() <= '9')
            ++pos_;
        bool integral = true;
        if (consume('.')) {
            integral = false;
            while (!done() && peek() >= '0' && peek() <= '9')
                ++pos_;
        }
        if (!done() && (peek() == 'e' || peek() == 'E')) {
            integral = false;
            ++pos_;
            if (!done() && (peek() == '+' || peek() == '-'))
                ++pos_;
            while (!done() && peek() >= '0' && peek() <= '9')
                ++pos_;
        }
        const std::string token(text_.substr(start, pos_ - start));
        JsonValue v;
        if (integral) {
            errno = 0;
            char *end = nullptr;
            const long long parsed =
                std::strtoll(token.c_str(), &end, 10);
            if (errno == 0 && end != nullptr && *end == '\0') {
                v.kind_ = JsonValue::Kind::Int;
                v.int_ = parsed;
                v.double_ = double(parsed);
                return v;
            }
            // Out of int64 range (e.g. a uint64 checksum emitted as
            // a bare number): degrade to double, like JS readers do.
        }
        errno = 0;
        char *end = nullptr;
        const double parsed = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0') {
            fail("malformed number '" + token + "'");
            return {};
        }
        v.kind_ = JsonValue::Kind::Double;
        v.double_ = parsed;
        v.int_ = std::int64_t(parsed);
        return v;
    }
};

JsonValue
JsonValue::parse(std::string_view text, std::string *error)
{
    return JsonParser(text).run(error);
}

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (!isObject())
        return nullptr;
    for (const Member &m : members_)
        if (m.first == key)
            return &m.second;
    return nullptr;
}

std::int64_t
JsonValue::getInt(std::string_view key, std::int64_t fallback) const
{
    const JsonValue *v = find(key);
    return (v != nullptr && v->isNumber()) ? v->intValue() : fallback;
}

double
JsonValue::getDouble(std::string_view key, double fallback) const
{
    const JsonValue *v = find(key);
    return (v != nullptr && v->isNumber()) ? v->numberValue()
                                           : fallback;
}

std::string
JsonValue::getString(std::string_view key,
                     const std::string &fallback) const
{
    const JsonValue *v = find(key);
    return (v != nullptr && v->isString()) ? v->stringValue()
                                           : fallback;
}

bool
JsonValue::getBool(std::string_view key, bool fallback) const
{
    const JsonValue *v = find(key);
    return (v != nullptr && v->isBool()) ? v->boolValue() : fallback;
}

} // namespace cooprt::diff

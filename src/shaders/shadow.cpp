#include "shaders/shadow.hpp"

#include <cmath>

namespace cooprt::shaders {

using geom::Pcg32;
using geom::Ray;
using geom::Vec3;
using rtunit::kWarpSize;

LightSampler::LightSampler(const scene::Scene &scene) : scene_(scene)
{
    for (std::uint32_t i = 0; i < scene.mesh.size(); ++i)
        if (scene.materialOf(i).isLight())
            light_prims_.push_back(i);
}

Vec3
LightSampler::samplePoint(Pcg32 &rng) const
{
    if (light_prims_.empty())
        return scene_.mesh.bounds().centroid();
    const std::uint32_t prim = light_prims_[rng.nextBelow(
        std::uint32_t(light_prims_.size()))];
    const geom::Triangle &t = scene_.mesh.tri(prim);
    // Uniform barycentric sample.
    float u = rng.nextFloat(), v = rng.nextFloat();
    if (u + v > 1.0f) {
        u = 1.0f - u;
        v = 1.0f - v;
    }
    return t.v0 * (1.0f - u - v) + t.v1 * u + t.v2 * v;
}

ShadowProgram::ShadowProgram(const scene::Scene &scene,
                             const LightSampler &lights, Film *film,
                             int first_pixel, int width, int height,
                             const ShadowParams &params)
    : scene_(scene), lights_(lights), film_(film), params_(params),
      width_(width), height_(height)
{
    const int total = width * height;
    for (int t = 0; t < kWarpSize; ++t) {
        const int pixel = first_pixel + t;
        if (pixel >= total)
            continue;
        PixelState &p = pixels_[std::size_t(t)];
        p.valid = true;
        p.px = pixel % width;
        p.py = pixel / width;
        p.rng = Pcg32(geom::mix64(std::uint64_t(pixel) * 69069u ^
                                  params.frame_seed),
                      std::uint64_t(pixel));
    }
}

void
ShadowProgram::finish(PixelState &p)
{
    if (film_ != nullptr) {
        const float lit = params_.samples > 0
                              ? float(p.lit) / float(params_.samples)
                              : 1.0f;
        film_->add(p.px, p.py, Vec3(0.15f + 0.85f * lit));
    }
    p.shading = false;
    p.valid = false;
}

gpu::WarpAction
ShadowProgram::makeRound()
{
    gpu::WarpAction a;
    // Occlusion queries terminate at the first hit (any-hit).
    a.trace.any_hit = true;
    a.cost = params_.shade_cost;
    a.kind = gpu::WarpAction::Kind::Finish;
    for (int t = 0; t < kWarpSize; ++t) {
        PixelState &p = pixels_[std::size_t(t)];
        if (!p.valid || !p.shading)
            continue;
        const Vec3 light = lights_.samplePoint(p.rng);
        const Vec3 d = light - p.hit_point;
        const float dist = d.length();
        if (dist < 1e-3f) {
            // Shading point effectively on the light: lit for free.
            p.lit++;
            p.issued = false;
            continue;
        }
        a.trace.rays[std::size_t(t)] =
            Ray(p.hit_point, d / dist, 1e-3f, dist - 1e-3f);
        p.issued = true;
        a.kind = gpu::WarpAction::Kind::Trace;
    }
    return a;
}

gpu::WarpAction
ShadowProgram::start()
{
    gpu::WarpAction a;
    a.cost = params_.shade_cost;
    a.kind = gpu::WarpAction::Kind::Finish;
    for (int t = 0; t < kWarpSize; ++t) {
        PixelState &p = pixels_[std::size_t(t)];
        if (!p.valid)
            continue;
        a.trace.rays[std::size_t(t)] = scene_.camera.primaryRay(
            p.px, p.py, width_, height_, 0.5f, 0.5f);
        a.kind = gpu::WarpAction::Kind::Trace;
    }
    round_ = 0;
    return a;
}

gpu::WarpAction
ShadowProgram::resume(const rtunit::TraceResult &result)
{
    if (round_ == 0) {
        for (int t = 0; t < kWarpSize; ++t) {
            PixelState &p = pixels_[std::size_t(t)];
            if (!p.valid)
                continue;
            const auto &hit = result.hits[std::size_t(t)];
            if (!hit.hit()) {
                p.lit = params_.samples; // sky: fully lit
                finish(p);
                continue;
            }
            const Ray primary = scene_.camera.primaryRay(
                p.px, p.py, width_, height_, 0.5f, 0.5f);
            // Offset slightly along the normal against self-shadowing.
            p.hit_point = primary.at(hit.thit) + hit.normal * 1e-3f;
            p.shading = true;
        }
    } else {
        for (int t = 0; t < kWarpSize; ++t) {
            PixelState &p = pixels_[std::size_t(t)];
            if (!p.valid || !p.shading)
                continue;
            // Shadow ray that reaches the light unobstructed = lit.
            if (p.issued && !result.hits[std::size_t(t)].hit())
                p.lit++;
            p.issued = false;
            if (round_ >= params_.samples)
                finish(p);
        }
    }
    round_++;
    if (round_ > params_.samples) {
        gpu::WarpAction done;
        done.cost = params_.shade_cost;
        done.kind = gpu::WarpAction::Kind::Finish;
        return done;
    }
    return makeRound();
}

std::vector<std::unique_ptr<gpu::WarpProgram>>
makeShadowFrame(const scene::Scene &scene, const LightSampler &lights,
                Film *film, int width, int height,
                const ShadowParams &params)
{
    std::vector<std::unique_ptr<gpu::WarpProgram>> out;
    const int total = width * height;
    for (int first = 0; first < total; first += kWarpSize)
        out.push_back(std::make_unique<ShadowProgram>(
            scene, lights, film, first, width, height, params));
    return out;
}

} // namespace cooprt::shaders

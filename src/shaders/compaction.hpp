/**
 * @file
 * Active-thread compaction baseline (Wald, HPG'11; paper Sections 3
 * and 8.1): at every bounce, the still-alive paths from the whole
 * frame are compacted into as few full warps as possible before the
 * next trace_ray.
 *
 * The paper argues this addresses *inactive* threads but not *early
 * finishing* ones, and costs a global reorganization point per
 * bounce — this implementation makes both effects measurable: warps
 * are re-packed between bounces (so trace_ray sees full warps), but
 * each bounce is a machine-wide barrier.
 */

#ifndef COOPRT_SHADERS_COMPACTION_HPP
#define COOPRT_SHADERS_COMPACTION_HPP

#include "bvh/flat_bvh.hpp"
#include "gpu/gpu.hpp"
#include "scene/scene.hpp"
#include "shaders/film.hpp"
#include "shaders/path_tracer.hpp"

namespace cooprt::shaders {

/** Result of a compacted path-traced frame. */
struct CompactionResult
{
    /** Total cycles summed over the per-bounce passes. */
    std::uint64_t cycles = 0;
    /** Cycles of each bounce pass. */
    std::vector<std::uint64_t> bounce_cycles;
    /** Warps traced per bounce (shrinks as paths die). */
    std::vector<std::size_t> bounce_warps;
    /** trace_ray count over the frame. */
    std::uint64_t traces = 0;
};

/**
 * Path-trace a frame with per-bounce active-thread compaction.
 *
 * @param sc     Scene (materials, camera, sky).
 * @param flat   Its BVH.
 * @param config GPU configuration (CoopRT may be enabled on top).
 * @param res    Square frame resolution.
 * @param params Bounce limit, seed, per-bounce shading cost.
 * @param film   Optional output image; pixel results are identical
 *               to the uncompacted path tracer's.
 */
CompactionResult runCompactedPathTrace(const scene::Scene &sc,
                                       const bvh::FlatBvh &flat,
                                       const gpu::GpuConfig &config,
                                       int res,
                                       const PtParams &params = {},
                                       Film *film = nullptr);

} // namespace cooprt::shaders

#endif // COOPRT_SHADERS_COMPACTION_HPP

#include "shaders/film.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <stdexcept>

namespace cooprt::shaders {

double
Film::averageLuminance() const
{
    if (pixels_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &p : pixels_)
        sum += 0.2126 * p.x + 0.7152 * p.y + 0.0722 * p.z;
    return sum / double(pixels_.size());
}

double
Film::mse(const Film &other) const
{
    if (other.width_ != width_ || other.height_ != height_)
        throw std::invalid_argument("Film::mse: dimension mismatch");
    if (pixels_.empty())
        return 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < pixels_.size(); ++i) {
        const auto d = pixels_[i] - other.pixels_[i];
        sum += double(d.x) * d.x + double(d.y) * d.y +
               double(d.z) * d.z;
    }
    return sum / (3.0 * double(pixels_.size()));
}

double
Film::psnr(const Film &other) const
{
    const double e = mse(other);
    if (e <= 0.0)
        return std::numeric_limits<double>::infinity();
    return 10.0 * std::log10(1.0 / e);
}

void
Film::writePpm(const std::string &path, float exposure) const
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        throw std::runtime_error("Film: cannot open " + path);
    f << "P6\n" << width_ << ' ' << height_ << "\n255\n";
    auto encode = [exposure](float v) {
        const float e = std::pow(std::max(0.0f, v * exposure),
                                 1.0f / 2.2f);
        return static_cast<unsigned char>(
            std::clamp(e, 0.0f, 1.0f) * 255.0f + 0.5f);
    };
    for (const auto &p : pixels_) {
        const unsigned char rgb[3] = {encode(p.x), encode(p.y),
                                      encode(p.z)};
        f.write(reinterpret_cast<const char *>(rgb), 3);
    }
}

} // namespace cooprt::shaders

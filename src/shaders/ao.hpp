/**
 * @file
 * Ambient-occlusion shader workload (paper Section 7.3): a primary
 * closest-hit ray per pixel, then a small number of short, localized
 * occlusion rays from the hit point. Much more coherent than path
 * tracing, hence less headroom for CoopRT.
 */

#ifndef COOPRT_SHADERS_AO_HPP
#define COOPRT_SHADERS_AO_HPP

#include <memory>
#include <vector>

#include "geom/rng.hpp"
#include "gpu/warp_program.hpp"
#include "scene/scene.hpp"
#include "shaders/film.hpp"

namespace cooprt::shaders {

/** AO parameters. */
struct AoParams
{
    /** Occlusion rays per pixel after the primary hit. */
    int samples = 4;
    /** Occlusion radius as a fraction of the scene diagonal. */
    float radius_fraction = 0.05f;
    std::uint64_t frame_seed = 2;
    gpu::ShadingCost shade_cost{12, 3, 4};
};

/**
 * Per-warp AO program: primary trace, then `samples` rounds of
 * hemisphere occlusion rays; the pixel value is the unoccluded
 * fraction.
 */
class AmbientOcclusionProgram : public gpu::WarpProgram
{
  public:
    AmbientOcclusionProgram(const scene::Scene &scene, Film *film,
                            int first_pixel, int width, int height,
                            const AoParams &params);

    gpu::WarpAction start() override;
    gpu::WarpAction resume(const rtunit::TraceResult &result) override;

  private:
    struct PixelState
    {
        bool valid = false;   ///< pixel exists
        bool shading = false; ///< primary hit found, AO in progress
        int px = 0, py = 0;
        geom::Vec3 hit_point;
        geom::Vec3 normal;
        int unoccluded = 0;
        geom::Pcg32 rng;
    };

    gpu::WarpAction makeRound();
    void finish(PixelState &p);

    const scene::Scene &scene_;
    Film *film_;
    AoParams params_;
    float ao_radius_;
    int width_ = 0, height_ = 0;
    std::array<PixelState, rtunit::kWarpSize> pixels_;
    int round_ = 0; ///< 0 = primary, 1..samples = AO rays
};

/** One AO program per warp over the frame. */
std::vector<std::unique_ptr<gpu::WarpProgram>>
makeAmbientOcclusionFrame(const scene::Scene &scene, Film *film,
                          int width, int height,
                          const AoParams &params = {});

} // namespace cooprt::shaders

#endif // COOPRT_SHADERS_AO_HPP

#include "shaders/ao.hpp"

namespace cooprt::shaders {

using geom::Pcg32;
using geom::Ray;
using geom::Vec3;
using rtunit::kWarpSize;

AmbientOcclusionProgram::AmbientOcclusionProgram(
    const scene::Scene &scene, Film *film, int first_pixel, int width,
    int height, const AoParams &params)
    : scene_(scene), film_(film), params_(params)
{
    ao_radius_ = scene.mesh.bounds().extent().length() *
                 params.radius_fraction;
    const int total = width * height;
    for (int t = 0; t < kWarpSize; ++t) {
        const int pixel = first_pixel + t;
        if (pixel >= total)
            continue;
        PixelState &p = pixels_[std::size_t(t)];
        p.valid = true;
        p.px = pixel % width;
        p.py = pixel / width;
        p.rng = Pcg32(geom::mix64(std::uint64_t(pixel) * 40503u ^
                                  params.frame_seed),
                      std::uint64_t(pixel));
    }
    width_ = width;
    height_ = height;
}

void
AmbientOcclusionProgram::finish(PixelState &p)
{
    if (film_ != nullptr) {
        const float ao = params_.samples > 0
                             ? float(p.unoccluded) /
                                   float(params_.samples)
                             : 1.0f;
        film_->add(p.px, p.py, Vec3(ao));
    }
    p.shading = false;
    p.valid = false;
}

gpu::WarpAction
AmbientOcclusionProgram::makeRound()
{
    gpu::WarpAction a;
    // Occlusion queries terminate at the first hit (any-hit).
    a.trace.any_hit = true;
    a.cost = params_.shade_cost;
    a.kind = gpu::WarpAction::Kind::Finish;
    for (int t = 0; t < kWarpSize; ++t) {
        PixelState &p = pixels_[std::size_t(t)];
        if (!p.valid || !p.shading)
            continue;
        // Short occlusion ray in the hemisphere around the normal.
        const Vec3 dir = p.rng.nextCosineHemisphere(p.normal);
        a.trace.rays[std::size_t(t)] =
            Ray(p.hit_point, dir, 1e-3f, ao_radius_);
        a.kind = gpu::WarpAction::Kind::Trace;
    }
    return a;
}

gpu::WarpAction
AmbientOcclusionProgram::start()
{
    gpu::WarpAction a;
    a.cost = params_.shade_cost;
    a.kind = gpu::WarpAction::Kind::Finish;
    for (int t = 0; t < kWarpSize; ++t) {
        PixelState &p = pixels_[std::size_t(t)];
        if (!p.valid)
            continue;
        a.trace.rays[std::size_t(t)] = scene_.camera.primaryRay(
            p.px, p.py, width_, height_, 0.5f, 0.5f);
        a.kind = gpu::WarpAction::Kind::Trace;
    }
    round_ = 0;
    return a;
}

gpu::WarpAction
AmbientOcclusionProgram::resume(const rtunit::TraceResult &result)
{
    if (round_ == 0) {
        // Primary hits: set up shading points.
        for (int t = 0; t < kWarpSize; ++t) {
            PixelState &p = pixels_[std::size_t(t)];
            if (!p.valid)
                continue;
            const auto &hit = result.hits[std::size_t(t)];
            if (!hit.hit()) {
                // Sky pixel: fully unoccluded.
                p.unoccluded = params_.samples;
                finish(p);
                continue;
            }
            const Ray primary = scene_.camera.primaryRay(
                p.px, p.py, width_, height_, 0.5f, 0.5f);
            p.hit_point = primary.at(hit.thit);
            p.normal = hit.normal;
            p.shading = true;
        }
    } else {
        for (int t = 0; t < kWarpSize; ++t) {
            PixelState &p = pixels_[std::size_t(t)];
            if (!p.valid || !p.shading)
                continue;
            if (!result.hits[std::size_t(t)].hit())
                p.unoccluded++;
            if (round_ >= params_.samples)
                finish(p);
        }
    }
    round_++;
    if (round_ > params_.samples) {
        gpu::WarpAction done;
        done.cost = params_.shade_cost;
        done.kind = gpu::WarpAction::Kind::Finish;
        return done;
    }
    return makeRound();
}

std::vector<std::unique_ptr<gpu::WarpProgram>>
makeAmbientOcclusionFrame(const scene::Scene &scene, Film *film,
                          int width, int height, const AoParams &params)
{
    std::vector<std::unique_ptr<gpu::WarpProgram>> out;
    const int total = width * height;
    for (int first = 0; first < total; first += kWarpSize)
        out.push_back(std::make_unique<AmbientOcclusionProgram>(
            scene, film, first, width, height, params));
    return out;
}

} // namespace cooprt::shaders

/**
 * @file
 * The output image: per-pixel radiance accumulation and PPM export.
 */

#ifndef COOPRT_SHADERS_FILM_HPP
#define COOPRT_SHADERS_FILM_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "geom/vec3.hpp"

namespace cooprt::shaders {

/**
 * A linear-radiance frame buffer. Pixels accumulate sample radiance;
 * `writePpm` tone-maps (simple gamma) to 8-bit PPM.
 */
class Film
{
  public:
    Film(int width, int height)
        : width_(width), height_(height),
          pixels_(std::size_t(width) * std::size_t(height))
    {}

    int width() const { return width_; }
    int height() const { return height_; }

    /** Add @p radiance to pixel (@p x, @p y). */
    void
    add(int x, int y, const geom::Vec3 &radiance)
    {
        pixels_[index(x, y)] += radiance;
        samples_added_++;
    }

    const geom::Vec3 &pixel(int x, int y) const
    { return pixels_[index(x, y)]; }

    std::uint64_t samplesAdded() const { return samples_added_; }

    /** Average luminance over the frame (for tests). */
    double averageLuminance() const;

    /**
     * Mean squared error against @p other (same dimensions required;
     * throws std::invalid_argument otherwise).
     */
    double mse(const Film &other) const;

    /**
     * Peak signal-to-noise ratio in dB against @p other, with peak
     * radiance 1.0; returns +inf for identical images.
     */
    double psnr(const Film &other) const;

    /** Write as a binary P6 PPM with 1/2.2 gamma. */
    void writePpm(const std::string &path, float exposure = 1.0f) const;

  private:
    std::size_t
    index(int x, int y) const
    {
        return std::size_t(y) * std::size_t(width_) + std::size_t(x);
    }

    int width_;
    int height_;
    std::vector<geom::Vec3> pixels_;
    std::uint64_t samples_added_ = 0;
};

} // namespace cooprt::shaders

#endif // COOPRT_SHADERS_FILM_HPP

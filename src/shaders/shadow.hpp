/**
 * @file
 * Shadow shader workload (paper Section 7.3): a primary closest-hit
 * ray per pixel, then one shadow ray per light sample toward a point
 * on an emissive surface. The most coherent of the three workloads.
 */

#ifndef COOPRT_SHADERS_SHADOW_HPP
#define COOPRT_SHADERS_SHADOW_HPP

#include <memory>
#include <vector>

#include "geom/rng.hpp"
#include "gpu/warp_program.hpp"
#include "scene/scene.hpp"
#include "shaders/film.hpp"

namespace cooprt::shaders {

/** Shadow-shader parameters. */
struct ShadowParams
{
    /** Shadow rays (light samples) per pixel. */
    int samples = 2;
    std::uint64_t frame_seed = 3;
    gpu::ShadingCost shade_cost{10, 2, 4};
};

/**
 * The set of emissive triangles of a scene, with uniform sampling of
 * points on them (used by the shadow shader to aim shadow rays).
 */
class LightSampler
{
  public:
    explicit LightSampler(const scene::Scene &scene);

    bool hasLights() const { return !light_prims_.empty(); }

    /** A random point on a random emissive triangle. */
    geom::Vec3 samplePoint(geom::Pcg32 &rng) const;

  private:
    const scene::Scene &scene_;
    std::vector<std::uint32_t> light_prims_;
};

/**
 * Per-warp shadow program: primary trace, then `samples` shadow rays
 * toward light points. Pixel value = lit fraction.
 */
class ShadowProgram : public gpu::WarpProgram
{
  public:
    ShadowProgram(const scene::Scene &scene,
                  const LightSampler &lights, Film *film,
                  int first_pixel, int width, int height,
                  const ShadowParams &params);

    gpu::WarpAction start() override;
    gpu::WarpAction resume(const rtunit::TraceResult &result) override;

  private:
    struct PixelState
    {
        bool valid = false;
        bool shading = false;
        bool issued = false; ///< a shadow ray is in flight this round
        int px = 0, py = 0;
        geom::Vec3 hit_point;
        int lit = 0;
        geom::Pcg32 rng;
    };

    gpu::WarpAction makeRound();
    void finish(PixelState &p);

    const scene::Scene &scene_;
    const LightSampler &lights_;
    Film *film_;
    ShadowParams params_;
    int width_ = 0, height_ = 0;
    std::array<PixelState, rtunit::kWarpSize> pixels_;
    int round_ = 0;
};

/** One shadow program per warp over the frame. */
std::vector<std::unique_ptr<gpu::WarpProgram>>
makeShadowFrame(const scene::Scene &scene, const LightSampler &lights,
                Film *film, int width, int height,
                const ShadowParams &params = {});

} // namespace cooprt::shaders

#endif // COOPRT_SHADERS_SHADOW_HPP

/**
 * @file
 * The path-tracing workload (paper Listing 1): a raygen shader whose
 * loop traces up to NUM_BOUNCES rays per pixel, breaking on miss, on
 * hitting a light, or when the surface absorbs ("!scattered").
 *
 * Two forms are provided:
 *  - `PathTracerProgram`: the timing-level WarpProgram the GPU
 *    simulator executes (one per warp of 32 pixels);
 *  - `renderReference()`: the functional CPU path tracer used by the
 *    image examples and as the correctness oracle in tests.
 */

#ifndef COOPRT_SHADERS_PATH_TRACER_HPP
#define COOPRT_SHADERS_PATH_TRACER_HPP

#include <memory>
#include <vector>

#include "bvh/flat_bvh.hpp"
#include "geom/rng.hpp"
#include "gpu/warp_program.hpp"
#include "scene/scene.hpp"
#include "shaders/film.hpp"

namespace cooprt::shaders {

/** Path-tracing parameters (paper: 16 bounces, 1 sample per pixel). */
struct PtParams
{
    int max_bounces = 16;
    std::uint64_t frame_seed = 1;
    /**
     * Per-bounce shading costs for the Fig. 1 stall attribution:
     * ray setup / hit processing (ALU), scatter sampling (SFU),
     * hit-attribute and frame-buffer traffic (MEM).
     */
    gpu::ShadingCost bounce_cost{28, 6, 8};
};

/**
 * Per-warp path tracer: 32 consecutive pixels of the frame. Threads
 * whose path terminated are inactive in subsequent trace_ray
 * instructions — exactly the divergence the paper exploits.
 */
class PathTracerProgram : public gpu::WarpProgram
{
  public:
    /**
     * @param scene       Scene (materials, camera, sky).
     * @param film        Output image (may be nullptr to discard).
     * @param first_pixel Linear index of this warp's first pixel.
     * @param width,height Frame dimensions.
     * @param params      Bounce limit and costs.
     */
    PathTracerProgram(const scene::Scene &scene, Film *film,
                      int first_pixel, int width, int height,
                      const PtParams &params);

    gpu::WarpAction start() override;
    gpu::WarpAction resume(const rtunit::TraceResult &result) override;

    /** Bounces actually issued so far (for tests). */
    int bouncesIssued() const { return bounce_; }

  private:
    struct PathState
    {
        bool alive = false;
        int px = 0, py = 0;
        geom::Ray ray;
        geom::Vec3 throughput{1, 1, 1};
        geom::Pcg32 rng;
    };

    gpu::WarpAction makeTraceAction();
    void terminate(PathState &p, const geom::Vec3 &radiance);

    const scene::Scene &scene_;
    Film *film_;
    PtParams params_;
    std::array<PathState, rtunit::kWarpSize> paths_;
    int bounce_ = 0;
};

/**
 * Build one PathTracerProgram per warp covering a width x height
 * frame (32 consecutive pixels per warp, the Vulkan-sim default of
 * one warp per thread block).
 */
std::vector<std::unique_ptr<gpu::WarpProgram>>
makePathTracerFrame(const scene::Scene &scene, Film *film, int width,
                    int height, const PtParams &params = {});

/**
 * Functional CPU path tracer (no timing): renders @p spp samples per
 * pixel into @p film using the reference traversal. Deterministic for
 * a given seed.
 */
void renderReference(const scene::Scene &scene, const bvh::FlatBvh &bvh,
                     Film &film, int spp = 1, const PtParams &params = {});

} // namespace cooprt::shaders

#endif // COOPRT_SHADERS_PATH_TRACER_HPP

#include "shaders/path_tracer.hpp"

#include "bvh/traversal.hpp"

namespace cooprt::shaders {

using geom::HitRecord;
using geom::Pcg32;
using geom::Ray;
using geom::Vec3;
using rtunit::kWarpSize;

PathTracerProgram::PathTracerProgram(const scene::Scene &scene,
                                     Film *film, int first_pixel,
                                     int width, int height,
                                     const PtParams &params)
    : scene_(scene), film_(film), params_(params)
{
    const int total = width * height;
    for (int t = 0; t < kWarpSize; ++t) {
        const int pixel = first_pixel + t;
        if (pixel >= total)
            continue;
        PathState &p = paths_[std::size_t(t)];
        p.alive = true;
        p.px = pixel % width;
        p.py = pixel / width;
        p.rng = Pcg32(geom::mix64(std::uint64_t(pixel) * 2654435761u ^
                                  params.frame_seed),
                      std::uint64_t(pixel));
        p.ray = scene.camera.primaryRay(p.px, p.py, width, height,
                                        p.rng.nextFloat(),
                                        p.rng.nextFloat());
    }
}

void
PathTracerProgram::terminate(PathState &p, const Vec3 &radiance)
{
    if (film_ != nullptr)
        film_->add(p.px, p.py, radiance);
    p.alive = false;
}

gpu::WarpAction
PathTracerProgram::makeTraceAction()
{
    gpu::WarpAction a;
    a.cost = params_.bounce_cost;
    a.kind = gpu::WarpAction::Kind::Finish;
    for (int t = 0; t < kWarpSize; ++t) {
        if (!paths_[std::size_t(t)].alive)
            continue;
        a.kind = gpu::WarpAction::Kind::Trace;
        a.trace.rays[std::size_t(t)] = paths_[std::size_t(t)].ray;
    }
    if (a.kind == gpu::WarpAction::Kind::Trace)
        bounce_++;
    return a;
}

gpu::WarpAction
PathTracerProgram::start()
{
    return makeTraceAction();
}

gpu::WarpAction
PathTracerProgram::resume(const rtunit::TraceResult &result)
{
    for (int t = 0; t < kWarpSize; ++t) {
        PathState &p = paths_[std::size_t(t)];
        if (!p.alive)
            continue;
        const HitRecord &hit = result.hits[std::size_t(t)];

        if (!hit.hit()) { // missed the scene -> miss shader
            terminate(p, p.throughput * scene_.sky_emission);
            continue;
        }
        const scene::Material &mat = scene_.materialOf(hit.prim_id);
        if (mat.isLight()) { // closest-hit on an emitter
            terminate(p, p.throughput * mat.emission);
            continue;
        }
        if (p.rng.nextFloat() >= mat.scatter_prob) { // !scattered
            terminate(p, Vec3{0, 0, 0});
            continue;
        }
        // Lambertian bounce.
        p.throughput = p.throughput * mat.albedo;
        const Vec3 origin = p.ray.at(hit.thit);
        const Vec3 dir = p.rng.nextCosineHemisphere(hit.normal);
        p.ray = Ray(origin, dir);
    }

    if (bounce_ >= params_.max_bounces) {
        // Loop bound reached: surviving paths contribute nothing.
        for (auto &p : paths_)
            if (p.alive)
                terminate(p, Vec3{0, 0, 0});
    }
    return makeTraceAction();
}

std::vector<std::unique_ptr<gpu::WarpProgram>>
makePathTracerFrame(const scene::Scene &scene, Film *film, int width,
                    int height, const PtParams &params)
{
    std::vector<std::unique_ptr<gpu::WarpProgram>> out;
    const int total = width * height;
    for (int first = 0; first < total; first += kWarpSize)
        out.push_back(std::make_unique<PathTracerProgram>(
            scene, film, first, width, height, params));
    return out;
}

void
renderReference(const scene::Scene &scene, const bvh::FlatBvh &bvh,
                Film &film, int spp, const PtParams &params)
{
    for (int py = 0; py < film.height(); ++py) {
        for (int px = 0; px < film.width(); ++px) {
            const int pixel = py * film.width() + px;
            Pcg32 rng(geom::mix64(std::uint64_t(pixel) * 2654435761u ^
                                  params.frame_seed),
                      std::uint64_t(pixel));
            Vec3 total{0, 0, 0};
            for (int s = 0; s < spp; ++s) {
                Ray ray = scene.camera.primaryRay(
                    px, py, film.width(), film.height(),
                    rng.nextFloat(), rng.nextFloat());
                Vec3 throughput{1, 1, 1};
                Vec3 radiance{0, 0, 0};
                for (int b = 0; b < params.max_bounces; ++b) {
                    HitRecord hit =
                        bvh::closestHit(bvh, scene.mesh, ray);
                    if (!hit.hit()) {
                        radiance = throughput * scene.sky_emission;
                        break;
                    }
                    const scene::Material &mat =
                        scene.materialOf(hit.prim_id);
                    if (mat.isLight()) {
                        radiance = throughput * mat.emission;
                        break;
                    }
                    if (rng.nextFloat() >= mat.scatter_prob)
                        break;
                    throughput = throughput * mat.albedo;
                    ray = Ray(ray.at(hit.thit),
                              rng.nextCosineHemisphere(hit.normal));
                }
                total += radiance;
            }
            film.add(px, py, total / float(spp));
        }
    }
}

} // namespace cooprt::shaders

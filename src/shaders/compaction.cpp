#include "shaders/compaction.hpp"

namespace cooprt::shaders {

using geom::HitRecord;
using geom::Pcg32;
using geom::Ray;
using geom::Vec3;
using rtunit::kWarpSize;

namespace {

/** One path's state across bounces. */
struct PathState
{
    bool alive = true;
    int px = 0, py = 0;
    Ray ray;
    Vec3 throughput{1, 1, 1};
    Pcg32 rng;
};

/**
 * A warp program that performs exactly one trace_ray over a packed
 * set of paths and finishes; the compaction loop re-packs between
 * passes.
 */
class OneTraceProgram : public gpu::WarpProgram
{
  public:
    OneTraceProgram(std::vector<PathState *> paths,
                    const gpu::ShadingCost &cost)
        : paths_(std::move(paths)), cost_(cost)
    {}

    gpu::WarpAction
    start() override
    {
        gpu::WarpAction a;
        a.cost = cost_;
        a.kind = gpu::WarpAction::Kind::Finish;
        for (std::size_t t = 0; t < paths_.size(); ++t) {
            a.trace.rays[t] = paths_[t]->ray;
            a.kind = gpu::WarpAction::Kind::Trace;
        }
        return a;
    }

    gpu::WarpAction
    resume(const rtunit::TraceResult &result) override
    {
        hits = result.hits;
        gpu::WarpAction done;
        done.cost = cost_;
        done.kind = gpu::WarpAction::Kind::Finish;
        return done;
    }

    const std::vector<PathState *> &paths() const { return paths_; }
    std::array<HitRecord, kWarpSize> hits{};

  private:
    std::vector<PathState *> paths_;
    gpu::ShadingCost cost_;
};

} // namespace

CompactionResult
runCompactedPathTrace(const scene::Scene &sc, const bvh::FlatBvh &flat,
                      const gpu::GpuConfig &config, int res,
                      const PtParams &params, Film *film)
{
    CompactionResult out;

    // Initialize every pixel's path exactly as PathTracerProgram does
    // (same RNG streams, so the image matches the uncompacted run).
    std::vector<PathState> paths(std::size_t(res) * std::size_t(res));
    for (int pixel = 0; pixel < res * res; ++pixel) {
        PathState &p = paths[std::size_t(pixel)];
        p.px = pixel % res;
        p.py = pixel / res;
        p.rng = Pcg32(geom::mix64(std::uint64_t(pixel) * 2654435761u ^
                                  params.frame_seed),
                      std::uint64_t(pixel));
        p.ray = sc.camera.primaryRay(p.px, p.py, res, res,
                                     p.rng.nextFloat(),
                                     p.rng.nextFloat());
    }

    auto terminate = [&](PathState &p, const Vec3 &radiance) {
        if (film != nullptr)
            film->add(p.px, p.py, radiance);
        p.alive = false;
    };

    gpu::Gpu g(flat, sc.mesh, config);

    for (int bounce = 0; bounce < params.max_bounces; ++bounce) {
        // Compact: gather the whole frame's alive paths, pack full
        // warps (this is the global reorganization barrier).
        std::vector<PathState *> alive;
        for (auto &p : paths)
            if (p.alive)
                alive.push_back(&p);
        if (alive.empty())
            break;

        std::vector<std::unique_ptr<OneTraceProgram>> programs;
        for (std::size_t first = 0; first < alive.size();
             first += kWarpSize) {
            const std::size_t last =
                std::min(alive.size(), first + kWarpSize);
            programs.push_back(std::make_unique<OneTraceProgram>(
                std::vector<PathState *>(alive.begin() + first,
                                         alive.begin() + last),
                params.bounce_cost));
        }

        std::vector<gpu::WarpProgram *> ptrs;
        for (auto &p : programs)
            ptrs.push_back(p.get());
        // Later bounces run on a warm machine: only the clock
        // restarts at the pass boundary.
        const gpu::GpuRunResult pass =
            g.run(ptrs, nullptr, 0, bounce > 0);
        out.cycles += pass.cycles;
        out.bounce_cycles.push_back(pass.cycles);
        out.bounce_warps.push_back(programs.size());
        out.traces += pass.rt.retired_warps;

        // Shade: process hits exactly like the uncompacted tracer.
        for (auto &prog : programs) {
            const auto &ps = prog->paths();
            for (std::size_t t = 0; t < ps.size(); ++t) {
                PathState &p = *ps[t];
                const HitRecord &hit = prog->hits[t];
                if (!hit.hit()) {
                    terminate(p, p.throughput * sc.sky_emission);
                    continue;
                }
                const scene::Material &mat =
                    sc.materialOf(hit.prim_id);
                if (mat.isLight()) {
                    terminate(p, p.throughput * mat.emission);
                    continue;
                }
                if (p.rng.nextFloat() >= mat.scatter_prob) {
                    terminate(p, Vec3{0, 0, 0});
                    continue;
                }
                p.throughput = p.throughput * mat.albedo;
                p.ray = Ray(p.ray.at(hit.thit),
                            p.rng.nextCosineHemisphere(hit.normal));
            }
        }
    }

    // Paths that survived the bounce limit contribute nothing.
    for (auto &p : paths)
        if (p.alive)
            terminate(p, Vec3{0, 0, 0});
    return out;
}

} // namespace cooprt::shaders

/**
 * @file
 * Fixed-width table printer used by the bench harness to emit the
 * paper's tables and figure series in a readable and a CSV form.
 */

#ifndef COOPRT_STATS_TABLE_HPP
#define COOPRT_STATS_TABLE_HPP

#include <iosfwd>
#include <string>
#include <vector>

namespace cooprt::stats {

/**
 * A simple column-oriented table. Cells are strings; numeric helpers
 * format with a fixed precision. Print as aligned text or CSV.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Begin a new row; subsequent cell() calls fill it. */
    Table &row();

    /** Append a string cell to the current row. */
    Table &cell(const std::string &value);
    /** Append a numeric cell with @p precision decimals. */
    Table &cell(double value, int precision = 2);
    /** Append an integer cell. */
    Table &cell(std::uint64_t value);

    std::size_t rowCount() const { return rows_.size(); }
    std::size_t columnCount() const { return headers_.size(); }

    /** The cell at (@p r, @p c); empty string when short row. */
    const std::string &at(std::size_t r, std::size_t c) const;

    /** Print with aligned columns. */
    void print(std::ostream &os) const;
    /** Print as CSV (no escaping of commas; labels are simple). */
    void printCsv(std::ostream &os) const;
    /**
     * Print as one JSON object `{"headers":[...],"rows":[[...]]}`.
     * Cells that parse fully as finite numbers are emitted as JSON
     * numbers, everything else as escaped strings — so downstream
     * tooling can `json.load` bench output without re-parsing.
     */
    void printJson(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
    static const std::string empty_;
};

/** Geometric mean of @p values (which must all be positive). */
double geomean(const std::vector<double> &values);

/** Arithmetic mean; 0 for an empty vector. */
double mean(const std::vector<double> &values);

} // namespace cooprt::stats

#endif // COOPRT_STATS_TABLE_HPP

/**
 * @file
 * Interval activity sampling, mirroring the AerialVision-style stats
 * the paper uses: "At every 500 GPU cycles, we collect the number of
 * busy threads in RT unit ... and divide them by the number of total
 * threads" (Section 7.1). Drives Figs. 2, 10 and 11.
 */

#ifndef COOPRT_STATS_SAMPLER_HPP
#define COOPRT_STATS_SAMPLER_HPP

#include <cstdint>
#include <vector>

namespace cooprt::stats {

/**
 * Fixed-interval ratio sampler.
 *
 * Call `sample(cycle, busy, total)` whenever the simulator crosses a
 * sampling boundary; the sampler stores busy/total per interval and
 * reports the time series and its average.
 */
class ActivitySampler
{
  public:
    explicit ActivitySampler(std::uint64_t interval = 500)
        : interval_(interval)
    {}

    std::uint64_t interval() const { return interval_; }

    /** True when @p cycle has crossed into a new sampling interval. */
    bool
    due(std::uint64_t cycle) const
    {
        return cycle >= next_;
    }

    /** The next sampling boundary cycle. */
    std::uint64_t nextDue() const { return next_; }

    /**
     * Advance past @p cycle without recording (used when nothing is
     * resident and the interval should not be back-filled).
     */
    void
    skip(std::uint64_t cycle)
    {
        while (next_ <= cycle)
            next_ += interval_;
    }

    /** Record one sample and advance the next sampling boundary. */
    void
    sample(std::uint64_t cycle, std::uint64_t busy, std::uint64_t total)
    {
        busy_.push_back(busy);
        total_.push_back(total);
        // Skip ahead past idle gaps instead of back-filling them.
        while (next_ <= cycle)
            next_ += interval_;
    }

    std::size_t sampleCount() const { return busy_.size(); }

    /** Ratio of sample @p i, in [0, 1]. */
    double
    ratioAt(std::size_t i) const
    {
        return total_[i] == 0 ? 0.0
                              : double(busy_[i]) / double(total_[i]);
    }

    /** Average of the per-sample ratios (the paper's utilization). */
    double
    averageRatio() const
    {
        if (busy_.empty())
            return 0.0;
        double sum = 0.0;
        for (std::size_t i = 0; i < busy_.size(); ++i)
            sum += ratioAt(i);
        return sum / double(busy_.size());
    }

    /** Full time series of ratios. */
    std::vector<double>
    series() const
    {
        std::vector<double> out(busy_.size());
        for (std::size_t i = 0; i < busy_.size(); ++i)
            out[i] = ratioAt(i);
        return out;
    }

    void
    reset()
    {
        busy_.clear();
        total_.clear();
        next_ = 0;
    }

  private:
    std::uint64_t interval_;
    std::uint64_t next_ = 0;
    std::vector<std::uint64_t> busy_;
    std::vector<std::uint64_t> total_;
};

} // namespace cooprt::stats

#endif // COOPRT_STATS_SAMPLER_HPP

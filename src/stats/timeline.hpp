/**
 * @file
 * Per-thread busy-interval recorder for the paper's Fig. 11 warp
 * timelines ("a continuous bar indicates a non-empty traversal
 * stack"). Renders as ASCII art for the bench/example binaries.
 */

#ifndef COOPRT_STATS_TIMELINE_HPP
#define COOPRT_STATS_TIMELINE_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace cooprt::stats {

/** One contiguous busy interval [begin, end) in cycles. */
struct BusyInterval
{
    std::uint64_t begin = 0;
    std::uint64_t end = 0;
};

/**
 * Records, for a fixed set of lanes (threads), when each lane is busy.
 * Call `setBusy(lane, cycle, busy)` on transitions; the recorder turns
 * edge events into intervals.
 */
class TimelineRecorder
{
  public:
    explicit TimelineRecorder(int lanes = 32)
        : open_(lanes, kClosed), intervals_(lanes)
    {}

    int lanes() const { return int(intervals_.size()); }

    /** Report lane state at @p cycle; repeated states are idempotent. */
    void
    setBusy(int lane, std::uint64_t cycle, bool busy)
    {
        if (busy) {
            if (open_[lane] == kClosed)
                open_[lane] = cycle;
        } else if (open_[lane] != kClosed) {
            if (cycle > open_[lane])
                intervals_[lane].push_back({open_[lane], cycle});
            open_[lane] = kClosed;
        }
    }

    /** Close any still-open intervals at @p cycle. */
    void
    finish(std::uint64_t cycle)
    {
        for (int l = 0; l < lanes(); ++l)
            setBusy(l, cycle, false);
    }

    const std::vector<BusyInterval> &intervalsOf(int lane) const
    { return intervals_[lane]; }

    /** Total busy cycles of @p lane. */
    std::uint64_t
    busyCycles(int lane) const
    {
        std::uint64_t sum = 0;
        for (const auto &iv : intervals_[lane])
            sum += iv.end - iv.begin;
        return sum;
    }

    /** First busy cycle over all lanes (0 when never busy). */
    std::uint64_t firstCycle() const;
    /** Last busy cycle over all lanes. */
    std::uint64_t lastCycle() const;

    /** Average lane utilization over [firstCycle, lastCycle). */
    double averageUtilization() const;

    /**
     * Render the timeline as ASCII: one row per lane, @p columns wide,
     * '#' where the lane is busy for the majority of the column and
     * '.' elsewhere (the Fig. 11 bars).
     */
    std::string render(int columns = 80) const;

  private:
    static constexpr std::uint64_t kClosed = ~0ULL;
    std::vector<std::uint64_t> open_;
    std::vector<std::vector<BusyInterval>> intervals_;
};

} // namespace cooprt::stats

#endif // COOPRT_STATS_TIMELINE_HPP

#include "stats/table.hpp"

#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "trace/json.hpp"

namespace cooprt::stats {

const std::string Table::empty_;

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

Table &
Table::row()
{
    rows_.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &value)
{
    if (rows_.empty())
        throw std::logic_error("Table::cell before Table::row");
    rows_.back().push_back(value);
    return *this;
}

Table &
Table::cell(double value, int precision)
{
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(precision) << value;
    return cell(ss.str());
}

Table &
Table::cell(std::uint64_t value)
{
    return cell(std::to_string(value));
}

const std::string &
Table::at(std::size_t r, std::size_t c) const
{
    if (r >= rows_.size())
        throw std::out_of_range("Table::at row");
    if (c >= rows_[r].size())
        return empty_;
    return rows_[r][c];
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &r : rows_)
        for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());

    // First column (labels) left-justified, the rest right-justified.
    auto emitRow = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            const std::string &v = c < cells.size() ? cells[c] : empty_;
            if (c)
                os << "  " << std::right;
            else
                os << std::left;
            os << std::setw(int(widths[c])) << v;
        }
        os << '\n';
    };

    emitRow(headers_);
    for (std::size_t c = 0; c < headers_.size(); ++c)
        os << (c ? "  " : "") << std::string(widths[c], '-');
    os << '\n';
    for (const auto &r : rows_)
        emitRow(r);
}

void
Table::printCsv(std::ostream &os) const
{
    for (std::size_t c = 0; c < headers_.size(); ++c)
        os << (c ? "," : "") << headers_[c];
    os << '\n';
    for (const auto &r : rows_) {
        for (std::size_t c = 0; c < headers_.size(); ++c)
            os << (c ? "," : "") << (c < r.size() ? r[c] : empty_);
        os << '\n';
    }
}

void
Table::printJson(std::ostream &os) const
{
    // A cell is numeric when strtod consumes all of it and the value
    // is finite (JSON has no nan/inf).
    auto emitCell = [&os](const std::string &v) {
        if (!v.empty()) {
            char *end = nullptr;
            const double d = std::strtod(v.c_str(), &end);
            if (end == v.c_str() + v.size() && std::isfinite(d)) {
                os << v;
                return;
            }
        }
        os << cooprt::trace::quoteJson(v);
    };

    os << "{\"headers\":[";
    for (std::size_t c = 0; c < headers_.size(); ++c)
        os << (c ? "," : "")
           << cooprt::trace::quoteJson(headers_[c]);
    os << "],\"rows\":[";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        os << (r ? ",[" : "[");
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            if (c)
                os << ',';
            emitCell(c < rows_[r].size() ? rows_[r][c] : empty_);
        }
        os << ']';
    }
    os << "]}";
}

double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values) {
        if (v <= 0.0)
            throw std::domain_error("geomean requires positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / double(values.size()));
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / double(values.size());
}

} // namespace cooprt::stats

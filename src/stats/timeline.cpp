#include "stats/timeline.hpp"

#include <algorithm>
#include <cstdio>

namespace cooprt::stats {

std::uint64_t
TimelineRecorder::firstCycle() const
{
    std::uint64_t first = ~0ULL;
    for (const auto &lane : intervals_)
        if (!lane.empty())
            first = std::min(first, lane.front().begin);
    return first == ~0ULL ? 0 : first;
}

std::uint64_t
TimelineRecorder::lastCycle() const
{
    std::uint64_t last = 0;
    for (const auto &lane : intervals_)
        if (!lane.empty())
            last = std::max(last, lane.back().end);
    return last;
}

double
TimelineRecorder::averageUtilization() const
{
    const std::uint64_t span = lastCycle() - firstCycle();
    if (span == 0)
        return 0.0;
    std::uint64_t busy = 0;
    for (int l = 0; l < lanes(); ++l)
        busy += busyCycles(l);
    return double(busy) / double(span * lanes());
}

std::string
TimelineRecorder::render(int columns) const
{
    const std::uint64_t first = firstCycle();
    const std::uint64_t last = lastCycle();
    std::string out;
    if (last <= first)
        return out;
    const double per_col = double(last - first) / double(columns);

    for (int l = 0; l < lanes(); ++l) {
        std::string row(std::size_t(columns), '.');
        for (const auto &iv : intervals_[l]) {
            int c0 = int(double(iv.begin - first) / per_col);
            int c1 = int(double(iv.end - first) / per_col);
            c0 = std::clamp(c0, 0, columns - 1);
            c1 = std::clamp(c1, c0, columns - 1);
            for (int c = c0; c <= c1; ++c)
                row[std::size_t(c)] = '#';
        }
        char label[16];
        std::snprintf(label, sizeof(label), "t%02d ", l);
        out += label;
        out += row;
        out += '\n';
    }
    return out;
}

} // namespace cooprt::stats

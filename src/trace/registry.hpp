/**
 * @file
 * The per-component metric registry at the heart of the
 * observability subsystem (`cooprt::trace`).
 *
 * Components register their counters under hierarchical dotted names
 * at construction time:
 *
 *     reg.probe("rtunit.sm0.node_fetches",
 *               [this] { return double(stats_.node_fetches); }, this);
 *     auto &h = reg.histogram("rtunit.sm0.trace_latency");
 *
 * and the simulator (or any tool) takes named snapshots of the whole
 * registry — optionally restricted by a filter such as `rtunit.*` —
 * at sampling boundaries. Snapshots are value copies, so they stay
 * valid after the components (and their probes) are gone.
 *
 * Three metric kinds:
 *  - owned counters: `std::uint64_t` slots the registry stores;
 *  - owned histograms: log2-bucketed value distributions;
 *  - probes: callbacks reading a component's live state (existing
 *    stats structs stay the public API; the registry is the uniform
 *    enumeration layer over them).
 *
 * Probes are tagged with an owner token so a component's destructor
 * can drop its registrations (`unregisterOwner`); re-registering an
 * existing name overwrites, which makes per-run re-registration of
 * rebuilt components idempotent.
 */

#ifndef COOPRT_TRACE_REGISTRY_HPP
#define COOPRT_TRACE_REGISTRY_HPP

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace cooprt::trace {

/**
 * True when @p name matches @p filter. A filter is a comma-separated
 * list of patterns; a pattern matches by exact name, or as a prefix
 * when it ends in `*` (`rtunit.*`, `mem.l2.*`). The empty filter
 * matches everything.
 */
bool nameMatchesFilter(std::string_view name, std::string_view filter);

/**
 * A log2-bucketed histogram of unsigned samples: bucket 0 counts
 * value 0, bucket i counts values in [2^(i-1), 2^i). Cheap enough to
 * record on retire-grade paths (one bit_width + three adds).
 */
class Histogram
{
  public:
    static constexpr int kBuckets = 65;

    void
    record(std::uint64_t value)
    {
        count_++;
        sum_ += value;
        if (value > max_)
            max_ = value;
        buckets_[std::size_t(bucketOf(value))]++;
    }

    /** Bucket index of @p value (0 for 0, else bit_width). */
    static int bucketOf(std::uint64_t value);

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t max() const { return max_; }
    double
    mean() const
    {
        return count_ == 0 ? 0.0 : double(sum_) / double(count_);
    }
    const std::array<std::uint64_t, kBuckets> &buckets() const
    { return buckets_; }

    void
    reset()
    {
        count_ = sum_ = max_ = 0;
        buckets_.fill(0);
    }

  private:
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t max_ = 0;
    std::array<std::uint64_t, kBuckets> buckets_{};
};

/** One (name, value) pair of a registry snapshot. */
struct MetricSample
{
    std::string name;
    double value = 0.0;
};

/**
 * The registry. Not thread-safe (the simulator is single-threaded);
 * must outlive every component that registered an owned probe.
 */
class Registry
{
  public:
    /** A live-state reader; invoked at snapshot time. */
    using Probe = std::function<double()>;

    /**
     * The owned counter slot for @p name, created on first use.
     * References stay valid for the registry's lifetime.
     */
    std::uint64_t &counter(const std::string &name);

    /** The owned histogram for @p name, created on first use. */
    Histogram &histogram(const std::string &name);

    /**
     * Register (or overwrite) a probe under @p name. @p owner tags
     * the registration for `unregisterOwner`; pass the registering
     * component so its destructor can clean up.
     */
    void probe(const std::string &name, Probe fn,
               const void *owner = nullptr);

    /** Drop every probe registered with @p owner. */
    void unregisterOwner(const void *owner);

    /**
     * Snapshot every metric whose name matches @p filter, sorted by
     * name. Histograms expand into `<name>.count`, `<name>.sum`,
     * `<name>.mean` and `<name>.max` entries.
     */
    std::vector<MetricSample> snapshot(std::string_view filter = {}) const;

    /** The names a snapshot with @p filter would contain, sorted. */
    std::vector<std::string> names(std::string_view filter = {}) const;

    /** Registered metric count (histograms count once). */
    std::size_t size() const
    { return counters_.size() + histograms_.size() + probes_.size(); }

    void clear();

  private:
    struct ProbeEntry
    {
        Probe fn;
        const void *owner = nullptr;
    };

    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, Histogram> histograms_;
    std::map<std::string, ProbeEntry> probes_;
};

} // namespace cooprt::trace

#endif // COOPRT_TRACE_REGISTRY_HPP

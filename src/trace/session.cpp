#include "trace/session.hpp"

#include <ostream>

namespace cooprt::trace {

Session::Session(const SessionOptions &options) : options_(options)
{
    if (options_.events) {
        tracer_ = std::make_unique<Tracer>(options_.ring_capacity);
        tracer_->setFilter(options_.filter);
    }
    if (options_.metrics)
        metrics_ = std::make_unique<MetricsSampler>(
            &registry_, options_.metrics_interval, options_.filter);
}

RunTraceSummary
Session::summary() const
{
    RunTraceSummary s;
    s.enabled = true;
    if (tracer_) {
        s.events_recorded = tracer_->recorded();
        s.events_dropped = tracer_->dropped();
    }
    if (metrics_)
        s.metric_samples = metrics_->sampleCount();
    s.registered_metrics = registry_.size();
    return s;
}

void
Session::writeTrace(std::ostream &os) const
{
    if (tracer_)
        tracer_->writeJson(os);
}

void
Session::writeMetricsCsv(std::ostream &os) const
{
    if (metrics_) {
        if (run_key_.valid())
            os << runKeyCsvComment(run_key_);
        metrics_->writeCsv(os);
    }
}

void
Session::resetData()
{
    if (tracer_) {
        tracer_->clear();
        tracer_->setFilter(options_.filter);
    }
    if (metrics_)
        metrics_->reset();
}

} // namespace cooprt::trace

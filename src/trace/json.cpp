#include "trace/json.hpp"

#include <cstdio>
#include <sstream>

namespace cooprt::trace {

std::string
escapeJson(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\b':
            out += "\\b";
            break;
          case '\f':
            out += "\\f";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
quoteJson(std::string_view s)
{
    std::string out = "\"";
    out += escapeJson(s);
    out += '"';
    return out;
}

void
writeSchemaVersion(JsonWriter &w)
{
    w.field("schema_version", kSchemaVersion);
}

void
writeRunKey(JsonWriter &w, const RunKeyFields &key)
{
    w.open("run_key");
    w.field("scene", key.scene);
    w.field("shader", key.shader);
    w.field("resolution", key.resolution);
    w.field("fingerprint", key.fingerprint);
    w.close();
}

std::string
runKeyJson(const RunKeyFields &key)
{
    std::ostringstream ss;
    JsonWriter w(ss);
    w.open();
    w.field("scene", key.scene);
    w.field("shader", key.shader);
    w.field("resolution", key.resolution);
    w.field("fingerprint", key.fingerprint);
    w.close();
    return ss.str();
}

std::string
runKeyCsvComment(const RunKeyFields &key)
{
    std::string out = "# cooprt schema_version=";
    out += std::to_string(kSchemaVersion);
    out += " scene=" + key.scene;
    out += " shader=" + key.shader;
    out += " resolution=" + std::to_string(key.resolution);
    out += " fingerprint=" + key.fingerprint;
    out += '\n';
    return out;
}

} // namespace cooprt::trace

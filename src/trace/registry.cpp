#include "trace/registry.hpp"

#include <algorithm>
#include <bit>

namespace cooprt::trace {

bool
nameMatchesFilter(std::string_view name, std::string_view filter)
{
    if (filter.empty())
        return true;
    std::size_t start = 0;
    while (start <= filter.size()) {
        std::size_t end = filter.find(',', start);
        if (end == std::string_view::npos)
            end = filter.size();
        const std::string_view pat = filter.substr(start, end - start);
        if (!pat.empty()) {
            if (pat.back() == '*') {
                const std::string_view prefix =
                    pat.substr(0, pat.size() - 1);
                if (name.substr(0, prefix.size()) == prefix)
                    return true;
            } else if (name == pat) {
                return true;
            }
        }
        start = end + 1;
    }
    return false;
}

int
Histogram::bucketOf(std::uint64_t value)
{
    return value == 0 ? 0 : std::bit_width(value);
}

std::uint64_t &
Registry::counter(const std::string &name)
{
    return counters_[name]; // value-initialized to 0 on first use
}

Histogram &
Registry::histogram(const std::string &name)
{
    return histograms_[name];
}

void
Registry::probe(const std::string &name, Probe fn, const void *owner)
{
    probes_[name] = ProbeEntry{std::move(fn), owner};
}

void
Registry::unregisterOwner(const void *owner)
{
    if (owner == nullptr)
        return;
    for (auto it = probes_.begin(); it != probes_.end();) {
        if (it->second.owner == owner)
            it = probes_.erase(it);
        else
            ++it;
    }
}

std::vector<MetricSample>
Registry::snapshot(std::string_view filter) const
{
    // The three maps are each name-sorted; merging them keeps the
    // output sorted because histogram expansion suffixes only append
    // to the histogram's own name.
    std::vector<MetricSample> out;
    out.reserve(counters_.size() + 4 * histograms_.size() +
                probes_.size());
    for (const auto &[name, value] : counters_)
        if (nameMatchesFilter(name, filter))
            out.push_back({name, double(value)});
    for (const auto &[name, h] : histograms_) {
        if (!nameMatchesFilter(name, filter))
            continue;
        out.push_back({name + ".count", double(h.count())});
        out.push_back({name + ".max", double(h.max())});
        out.push_back({name + ".mean", h.mean()});
        out.push_back({name + ".sum", double(h.sum())});
    }
    for (const auto &[name, p] : probes_)
        if (nameMatchesFilter(name, filter))
            out.push_back({name, p.fn ? p.fn() : 0.0});
    std::sort(out.begin(), out.end(),
              [](const MetricSample &a, const MetricSample &b) {
                  return a.name < b.name;
              });
    return out;
}

std::vector<std::string>
Registry::names(std::string_view filter) const
{
    std::vector<std::string> out;
    for (const auto &s : snapshot(filter))
        out.push_back(s.name);
    return out;
}

void
Registry::clear()
{
    counters_.clear();
    histograms_.clear();
    probes_.clear();
}

} // namespace cooprt::trace

/**
 * @file
 * Structured event tracer producing Chrome `trace_event` JSON, so
 * any simulation run can be opened in chrome://tracing or Perfetto.
 *
 * Design constraints, in order:
 *  - tracing OFF must cost ~nothing: every emission site is a single
 *    null-pointer test (see the COOPRT_TRACE_* macros), and the whole
 *    thing can be compiled out with -DCOOPRT_TRACE_DISABLED;
 *  - tracing ON must never blow up memory: events land in a fixed
 *    ring buffer and the oldest are overwritten (the `dropped()`
 *    count reports how many);
 *  - the record path allocates nothing: event/category names are
 *    `const char *` with static lifetime, timestamps are simulated
 *    cycles (exported as microseconds so Perfetto's timeline works).
 *
 * Track mapping: `pid` is the SM index (one Perfetto process group
 * per SM, named via `processName`), `tid` is the warp id or
 * warp-buffer slot within it.
 */

#ifndef COOPRT_TRACE_CHROME_TRACE_HPP
#define COOPRT_TRACE_CHROME_TRACE_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace cooprt::trace {

/** One ring-buffer record; 48 bytes, no owned memory. */
struct TraceEvent
{
    enum class Kind : std::uint8_t
    {
        Complete, ///< duration: [ts, ts+dur), Chrome ph "X"
        Instant,  ///< point event, ph "i"
        Counter,  ///< sampled value track, ph "C"
    };

    const char *cat = "";  ///< category (static lifetime)
    const char *name = ""; ///< event name (static lifetime)
    std::uint64_t ts = 0;  ///< start cycle
    std::uint64_t dur = 0; ///< duration in cycles (Complete only)
    double value = 0.0;    ///< Counter only
    std::int32_t pid = 0;  ///< track group (SM index)
    std::int32_t tid = 0;  ///< track (warp id / slot)
    Kind kind = Kind::Instant;
};

/**
 * The tracer. Record methods are safe to call on every simulated
 * cycle; JSON serialization happens once, at export.
 */
class Tracer
{
  public:
    static constexpr std::size_t kDefaultCapacity = 1u << 20;

    explicit Tracer(std::size_t capacity = kDefaultCapacity);

    std::size_t capacity() const { return capacity_; }
    /** Events currently held (<= capacity). */
    std::size_t size() const { return ring_.size(); }
    /** Total events ever recorded. */
    std::uint64_t recorded() const { return recorded_; }
    /** Events overwritten because the ring was full. */
    std::uint64_t dropped() const { return dropped_; }

    /**
     * Category filter applied at export: only events whose
     * `cat` or `cat.name` matches (see nameMatchesFilter) are
     * serialized. Recording is unaffected.
     */
    void setFilter(std::string filter) { filter_ = std::move(filter); }
    const std::string &filter() const { return filter_; }

    void complete(const char *cat, const char *name, int pid, int tid,
                  std::uint64_t ts, std::uint64_t dur);
    void instant(const char *cat, const char *name, int pid, int tid,
                 std::uint64_t ts);
    void counter(const char *cat, const char *name, int pid,
                 std::uint64_t ts, double value);

    /** Perfetto display name for track group @p pid. */
    void processName(int pid, std::string name);
    /** Perfetto display name for track (@p pid, @p tid). */
    void threadName(int pid, int tid, std::string name);

    /**
     * Serialize as a Chrome trace_event JSON object
     * (`{"traceEvents": [...]}`), oldest event first, metadata
     * records included. Valid JSON regardless of event content.
     */
    void writeJson(std::ostream &os) const;

    void clear();

  private:
    void push(const TraceEvent &e);

    std::size_t capacity_;
    std::vector<TraceEvent> ring_;
    std::size_t head_ = 0; ///< next overwrite position once full
    std::uint64_t recorded_ = 0;
    std::uint64_t dropped_ = 0;
    std::string filter_;

    struct TrackName
    {
        std::int32_t pid = 0;
        std::int32_t tid = 0; ///< -1 for a process name
        std::string name;
    };
    std::vector<TrackName> track_names_;
};

} // namespace cooprt::trace

// Emission macros: a single branch when tracing is compiled in and
// the tracer pointer is null; nothing at all when compiled out.
#ifndef COOPRT_TRACE_DISABLED
#define COOPRT_TRACE_COMPLETE(tracer, cat, name, pid, tid, ts, dur)    \
    do {                                                               \
        if (tracer)                                                    \
            (tracer)->complete(cat, name, pid, tid, ts, dur);          \
    } while (0)
#define COOPRT_TRACE_INSTANT(tracer, cat, name, pid, tid, ts)          \
    do {                                                               \
        if (tracer)                                                    \
            (tracer)->instant(cat, name, pid, tid, ts);                \
    } while (0)
#define COOPRT_TRACE_COUNTER(tracer, cat, name, pid, ts, value)        \
    do {                                                               \
        if (tracer)                                                    \
            (tracer)->counter(cat, name, pid, ts, value);              \
    } while (0)
#else
#define COOPRT_TRACE_COMPLETE(tracer, cat, name, pid, tid, ts, dur)    \
    ((void)0)
#define COOPRT_TRACE_INSTANT(tracer, cat, name, pid, tid, ts) ((void)0)
#define COOPRT_TRACE_COUNTER(tracer, cat, name, pid, ts, value)        \
    ((void)0)
#endif

#endif // COOPRT_TRACE_CHROME_TRACE_HPP

/**
 * @file
 * One observability session: the registry, the (optional) Chrome
 * event tracer and the (optional) metrics sampler bundled behind a
 * single handle that the simulator plumbs down to every component.
 *
 * Usage (what `simulate_cli --trace --metrics` does):
 *
 *     trace::SessionOptions opt;
 *     opt.events = true;
 *     opt.metrics = true;
 *     opt.filter = "rtunit.*";
 *     trace::Session session(opt);
 *
 *     core::RunConfig cfg;
 *     cfg.trace_session = &session;
 *     auto out = sim.run(cfg);
 *
 *     std::ofstream tf("trace.json");
 *     session.writeTrace(tf);       // open in Perfetto
 *     std::ofstream mf("metrics.csv");
 *     session.writeMetricsCsv(mf);  // Figs. 2/10-style series
 *
 * A null session pointer anywhere means "tracing off"; every hook in
 * the simulator is then one pointer test, and reported cycle counts
 * are bit-identical with and without a session attached (tracing
 * observes, never schedules).
 *
 * The session must outlive the Gpu/components registered into its
 * registry; exported data (ring events, metric rows) are value
 * copies and remain valid afterwards.
 */

#ifndef COOPRT_TRACE_SESSION_HPP
#define COOPRT_TRACE_SESSION_HPP

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "trace/chrome_trace.hpp"
#include "trace/json.hpp"
#include "trace/metrics.hpp"
#include "trace/registry.hpp"

namespace cooprt::trace {

/** What a session collects. */
struct SessionOptions
{
    /** Record structured events into the ring buffer. */
    bool events = false;
    /** Take periodic registry snapshots (CSV time-series). */
    bool metrics = false;
    /** Ring capacity in events (~48 B each). */
    std::size_t ring_capacity = Tracer::kDefaultCapacity;
    /** Metrics sampling interval in cycles (paper: 500). */
    std::uint64_t metrics_interval = 500;
    /**
     * Filter (see nameMatchesFilter) applied to exported events and
     * to metric columns, e.g. "rtunit.*" or "mem.l2.*,rtunit.sm0.*".
     */
    std::string filter;
};

/** Per-run collection totals, surfaced in `core::RunOutcome`. */
struct RunTraceSummary
{
    bool enabled = false;
    std::uint64_t events_recorded = 0;
    std::uint64_t events_dropped = 0;
    std::uint64_t metric_samples = 0;
    std::uint64_t registered_metrics = 0;
};

class Session
{
  public:
    explicit Session(const SessionOptions &options = {});

    const SessionOptions &options() const { return options_; }

    Registry &registry() { return registry_; }
    const Registry &registry() const { return registry_; }

    /** Null when `options.events` is off. */
    Tracer *tracer() { return tracer_.get(); }
    const Tracer *tracer() const { return tracer_.get(); }

    /** Null when `options.metrics` is off. */
    MetricsSampler *metrics() { return metrics_.get(); }
    const MetricsSampler *metrics() const { return metrics_.get(); }

    RunTraceSummary summary() const;

    /** Chrome trace JSON; no-op when events are off. */
    void writeTrace(std::ostream &os) const;
    /** Metrics CSV; no-op when metrics are off. */
    void writeMetricsCsv(std::ostream &os) const;

    /** Drop collected data (start of a new run on a reused session). */
    void resetData();

    /** Stamp the run identity (called by `Simulation::run`); emitted
     *  as a leading `#` comment by writeMetricsCsv. Metadata only —
     *  does not touch collected data and survives resetData(). */
    void setRunKey(const RunKeyFields &key) { run_key_ = key; }
    const RunKeyFields &runKey() const { return run_key_; }

  private:
    SessionOptions options_;
    Registry registry_;
    std::unique_ptr<Tracer> tracer_;
    std::unique_ptr<MetricsSampler> metrics_;
    RunKeyFields run_key_;
};

} // namespace cooprt::trace

#endif // COOPRT_TRACE_SESSION_HPP

#include "trace/chrome_trace.hpp"

#include <algorithm>
#include <ostream>

#include "trace/json.hpp"
#include "trace/registry.hpp"

namespace cooprt::trace {

Tracer::Tracer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity)
{
    ring_.reserve(std::min<std::size_t>(capacity_, 4096));
}

void
Tracer::push(const TraceEvent &e)
{
    recorded_++;
    if (ring_.size() < capacity_) {
        ring_.push_back(e);
        return;
    }
    ring_[head_] = e;
    head_ = (head_ + 1) % capacity_;
    dropped_++;
}

void
Tracer::complete(const char *cat, const char *name, int pid, int tid,
                 std::uint64_t ts, std::uint64_t dur)
{
    TraceEvent e;
    e.kind = TraceEvent::Kind::Complete;
    e.cat = cat;
    e.name = name;
    e.pid = pid;
    e.tid = tid;
    e.ts = ts;
    e.dur = dur;
    push(e);
}

void
Tracer::instant(const char *cat, const char *name, int pid, int tid,
                std::uint64_t ts)
{
    TraceEvent e;
    e.kind = TraceEvent::Kind::Instant;
    e.cat = cat;
    e.name = name;
    e.pid = pid;
    e.tid = tid;
    e.ts = ts;
    push(e);
}

void
Tracer::counter(const char *cat, const char *name, int pid,
                std::uint64_t ts, double value)
{
    TraceEvent e;
    e.kind = TraceEvent::Kind::Counter;
    e.cat = cat;
    e.name = name;
    e.pid = pid;
    e.ts = ts;
    e.value = value;
    push(e);
}

void
Tracer::processName(int pid, std::string name)
{
    track_names_.push_back({pid, -1, std::move(name)});
}

void
Tracer::threadName(int pid, int tid, std::string name)
{
    track_names_.push_back({pid, tid, std::move(name)});
}

namespace {

bool
eventMatches(const TraceEvent &e, const std::string &filter)
{
    if (filter.empty())
        return true;
    if (nameMatchesFilter(e.cat, filter))
        return true;
    std::string full = e.cat;
    full += '.';
    full += e.name;
    return nameMatchesFilter(full, filter);
}

void
writeEvent(std::ostream &os, const TraceEvent &e, bool &first)
{
    if (!first)
        os << ",\n";
    first = false;
    os << "{\"cat\":" << quoteJson(e.cat) << ",\"name\":"
       << quoteJson(e.name) << ",\"pid\":" << e.pid;
    switch (e.kind) {
      case TraceEvent::Kind::Complete:
        os << ",\"tid\":" << e.tid << ",\"ph\":\"X\",\"ts\":" << e.ts
           << ",\"dur\":" << e.dur;
        break;
      case TraceEvent::Kind::Instant:
        os << ",\"tid\":" << e.tid
           << ",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << e.ts;
        break;
      case TraceEvent::Kind::Counter:
        os << ",\"ph\":\"C\",\"ts\":" << e.ts << ",\"args\":{"
           << quoteJson(e.name) << ":" << e.value << '}';
        break;
    }
    os << '}';
}

} // namespace

void
Tracer::writeJson(std::ostream &os) const
{
    os << "{\"traceEvents\":[\n";
    bool first = true;
    for (const auto &t : track_names_) {
        if (!first)
            os << ",\n";
        first = false;
        os << "{\"ph\":\"M\",\"pid\":" << t.pid;
        if (t.tid >= 0)
            os << ",\"tid\":" << t.tid
               << ",\"name\":\"thread_name\"";
        else
            os << ",\"name\":\"process_name\"";
        os << ",\"args\":{\"name\":" << quoteJson(t.name) << "}}";
    }
    // Oldest first: once the ring has wrapped, head_ is the oldest.
    const std::size_t n = ring_.size();
    for (std::size_t k = 0; k < n; ++k) {
        const TraceEvent &e = ring_[(head_ + k) % n];
        if (eventMatches(e, filter_))
            writeEvent(os, e, first);
    }
    os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void
Tracer::clear()
{
    ring_.clear();
    head_ = 0;
    recorded_ = 0;
    dropped_ = 0;
    track_names_.clear();
}

} // namespace cooprt::trace

/**
 * @file
 * JSON string escaping shared by every hand-rolled JSON emitter in
 * the repository (the run reporter, the Chrome-trace writer, the
 * bench table exporter). Kept dependency-free on purpose.
 */

#ifndef COOPRT_TRACE_JSON_HPP
#define COOPRT_TRACE_JSON_HPP

#include <string>
#include <string_view>

namespace cooprt::trace {

/**
 * Escape @p s for use inside a JSON string literal: quotes and
 * backslashes are backslash-escaped, control characters below 0x20
 * become \n / \t / \r / \b / \f or \u00XX. The result does NOT
 * include the surrounding quotes.
 */
std::string escapeJson(std::string_view s);

/** Convenience: @p s escaped and wrapped in double quotes. */
std::string quoteJson(std::string_view s);

} // namespace cooprt::trace

#endif // COOPRT_TRACE_JSON_HPP

/**
 * @file
 * JSON string escaping and the minimal streaming JSON writer shared
 * by every hand-rolled JSON emitter in the repository (the run
 * reporter, the Chrome-trace writer, the bench table exporter, the
 * ray-provenance raystats export). Kept dependency-free on purpose.
 */

#ifndef COOPRT_TRACE_JSON_HPP
#define COOPRT_TRACE_JSON_HPP

#include <ostream>
#include <string>
#include <string_view>

namespace cooprt::trace {

/**
 * Escape @p s for use inside a JSON string literal: quotes and
 * backslashes are backslash-escaped, control characters below 0x20
 * become \n / \t / \r / \b / \f or \u00XX. The result does NOT
 * include the surrounding quotes.
 */
std::string escapeJson(std::string_view s);

/** Convenience: @p s escaped and wrapped in double quotes. */
std::string quoteJson(std::string_view s);

/**
 * Minimal streaming JSON emitter: tracks comma placement per nesting
 * level, quotes keys/strings through quoteJson, and streams every
 * other value through operator<<. The caller is responsible for
 * balanced open/close calls; no validation happens here (the tests
 * run emitted documents through a JSON checker instead).
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    /** Open an object; with @p key, as `"key":{`. */
    void
    open(const char *key = nullptr)
    {
        comma();
        if (key)
            os_ << quoteJson(key) << ':';
        os_ << '{';
        first_ = true;
    }

    void
    close()
    {
        os_ << '}';
        first_ = false;
    }

    /** Open an array; with @p key, as `"key":[`. */
    void
    openArray(const char *key = nullptr)
    {
        comma();
        if (key)
            os_ << quoteJson(key) << ':';
        os_ << '[';
        first_ = true;
    }

    void
    closeArray()
    {
        os_ << ']';
        first_ = false;
    }

    template <typename T>
    void
    field(const char *key, const T &value)
    {
        comma();
        os_ << quoteJson(key) << ':' << value;
        first_ = false;
    }

    void
    field(const char *key, const std::string &value)
    {
        comma();
        os_ << quoteJson(key) << ':' << quoteJson(value);
        first_ = false;
    }

    /** Array element (inside openArray/closeArray). */
    template <typename T>
    void
    value(const T &v)
    {
        comma();
        os_ << v;
        first_ = false;
    }

    void
    value(const std::string &v)
    {
        comma();
        os_ << quoteJson(v);
        first_ = false;
    }

  private:
    void
    comma()
    {
        if (!first_)
            os_ << ',';
        first_ = true;
    }

    std::ostream &os_;
    bool first_ = true;
};

/**
 * Version of the repository's report/sink schema. Bumped whenever a
 * JSON report or sink changes shape in a way downstream tooling must
 * detect (field renames/removals, semantic changes); purely additive
 * fields do not bump it. Version 1 is the implicit, unstamped schema
 * of PRs 1-9; version 2 introduced the stamp itself plus the
 * `run_key` block (DESIGN.md section 18).
 */
inline constexpr int kSchemaVersion = 2;

/**
 * The canonical identity of one simulation run, stamped into every
 * JSON report/sink and the metrics CSV so cross-run tooling
 * (`cooprt::diff`, tools/validate_diff.py) can align or refuse to
 * align two documents. Two runs are *comparable* when scene, shader
 * and resolution agree; their fingerprints then say whether the
 * configurations were identical or are the very thing being compared
 * (DESIGN.md section 18).
 */
struct RunKeyFields
{
    /** Scene registry label. */
    std::string scene;
    /** Shader token (pt|ao|sh|knn|radius|contain). */
    std::string shader;
    /** Resolved square resolution (never 0 once stamped). */
    int resolution = 0;
    /** `RunConfig::fingerprint()` as "0x%016llx". */
    std::string fingerprint;

    /** True once a run has stamped the key. */
    bool valid() const { return !scene.empty(); }
};

/** Emit `"schema_version":N` into the current object. */
void writeSchemaVersion(JsonWriter &w);

/** Emit `"run_key":{...}` into the current object. */
void writeRunKey(JsonWriter &w, const RunKeyFields &key);

/** The run-key block as a standalone JSON object string (for the
 *  hand-concatenated emitters that bypass JsonWriter). */
std::string runKeyJson(const RunKeyFields &key);

/**
 * The schema/run-key stamp as one `#`-prefixed CSV comment line
 * (trailing newline included), prepended to metric time-series
 * exports. CSV consumers must skip `#` lines.
 */
std::string runKeyCsvComment(const RunKeyFields &key);

} // namespace cooprt::trace

#endif // COOPRT_TRACE_JSON_HPP

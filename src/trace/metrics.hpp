/**
 * @file
 * Periodic registry snapshots — the generalization of
 * `stats::ActivitySampler` to *every* registered metric.
 *
 * The GPU main loop drives the sampler at the same interval
 * boundaries as the activity sampler (paper Section 7.1's
 * AerialVision-style 500-cycle sampling), so the exported CSV
 * time-series powers Figs. 2 / 10 / 11 from the same data path.
 * Rows are value copies: the CSV can be written after the simulated
 * machine (and its registered probes) is gone.
 */

#ifndef COOPRT_TRACE_METRICS_HPP
#define COOPRT_TRACE_METRICS_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/registry.hpp"

namespace cooprt::trace {

/**
 * Fixed-interval registry sampler with the same boundary semantics
 * as `stats::ActivitySampler`: `nextDue()` is the next boundary,
 * `sample()`/`skip()` advance past the given cycle without
 * back-filling idle gaps.
 */
class MetricsSampler
{
  public:
    /**
     * @param registry Snapshot source; must outlive the sampler's
     *                 sample() calls (rows themselves are copies).
     * @param interval Sampling period in cycles.
     * @param filter   Column filter (see nameMatchesFilter).
     */
    explicit MetricsSampler(const Registry *registry,
                            std::uint64_t interval = 500,
                            std::string filter = {});

    std::uint64_t interval() const { return interval_; }
    std::uint64_t nextDue() const { return next_; }
    bool due(std::uint64_t cycle) const { return cycle >= next_; }

    /** Advance boundaries past @p cycle without recording. */
    void skip(std::uint64_t cycle);

    /** Snapshot the registry at @p cycle and advance boundaries. */
    void sample(std::uint64_t cycle);

    std::size_t sampleCount() const { return cycles_.size(); }
    /** Column names, fixed at the first sample(). */
    const std::vector<std::string> &columns() const { return columns_; }
    std::uint64_t cycleAt(std::size_t row) const
    { return cycles_[row]; }
    double at(std::size_t row, std::size_t col) const
    { return rows_[row][col]; }

    /**
     * The full time series of one metric; empty when @p name is not
     * a column.
     */
    std::vector<double> seriesOf(const std::string &name) const;

    /**
     * Write `cycle,<name>,<name>,...` CSV. Metric names contain no
     * commas or quotes by construction, so no escaping is needed.
     */
    void writeCsv(std::ostream &os) const;

    /** Drop samples and columns; boundaries restart at 0. */
    void reset();

  private:
    const Registry *registry_;
    std::uint64_t interval_;
    std::string filter_;
    std::uint64_t next_ = 0;
    std::vector<std::string> columns_;
    std::vector<std::uint64_t> cycles_;
    std::vector<std::vector<double>> rows_;
};

} // namespace cooprt::trace

#endif // COOPRT_TRACE_METRICS_HPP

#include "trace/metrics.hpp"

#include <ostream>

#include "check/check.hpp"

namespace cooprt::trace {

MetricsSampler::MetricsSampler(const Registry *registry,
                               std::uint64_t interval,
                               std::string filter)
    : registry_(registry), interval_(interval == 0 ? 1 : interval),
      filter_(std::move(filter))
{
}

void
MetricsSampler::skip(std::uint64_t cycle)
{
    while (next_ <= cycle)
        next_ += interval_;
}

void
MetricsSampler::sample(std::uint64_t cycle)
{
    const std::vector<MetricSample> snap =
        registry_->snapshot(filter_);
    if (columns_.empty()) {
        columns_.reserve(snap.size());
        for (const auto &s : snap)
            columns_.push_back(s.name);
    }
    // The registered metric set is fixed for a run, so rows align
    // with the first snapshot's columns; late registrations (which
    // would misalign) are dropped by matching on name.
    std::vector<double> row(columns_.size(), 0.0);
    std::size_t j = 0;
    for (const auto &s : snap) {
        while (j < columns_.size() && columns_[j] < s.name)
            ++j;
        if (j < columns_.size() && columns_[j] == s.name)
            row[j] = s.value;
    }
    std::uint64_t recorded = cycle;
    if (!cycles_.empty() && COOPRT_MUTATE(MetricsCycleRepeat))
        recorded = cycles_.back(); // the sampler's clock stalls
    cycles_.push_back(recorded);
    rows_.push_back(std::move(row));
    skip(cycle);
    // Rows advance strictly in time and the next boundary is always
    // in the future of the row just taken.
    COOPRT_AUDIT("trace.metrics", "trace.metrics_monotone", cycle,
                 cycles_.size() < 2 ||
                     cycles_[cycles_.size() - 1] >
                         cycles_[cycles_.size() - 2],
                 "sample row " +
                     std::to_string(cycles_.size() - 1) +
                     " at cycle " + std::to_string(cycles_.back()) +
                     " does not advance past the previous row");
    COOPRT_AUDIT("trace.metrics", "trace.metrics_monotone", cycle,
                 next_ > cycle,
                 "next boundary " + std::to_string(next_) +
                     " not past sampled cycle " +
                     std::to_string(cycle));
}

std::vector<double>
MetricsSampler::seriesOf(const std::string &name) const
{
    for (std::size_t c = 0; c < columns_.size(); ++c) {
        if (columns_[c] != name)
            continue;
        std::vector<double> out;
        out.reserve(rows_.size());
        for (const auto &row : rows_)
            out.push_back(row[c]);
        return out;
    }
    return {};
}

void
MetricsSampler::writeCsv(std::ostream &os) const
{
    os << "cycle";
    for (const auto &c : columns_)
        os << ',' << c;
    os << '\n';
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        os << cycles_[r];
        for (const double v : rows_[r])
            os << ',' << v;
        os << '\n';
    }
}

void
MetricsSampler::reset()
{
    next_ = 0;
    columns_.clear();
    cycles_.clear();
    rows_.clear();
}

} // namespace cooprt::trace
